//! Query planning and execution.
//!
//! The engine deliberately keeps relational planning minimal, per the paper's
//! architecture: join *order* is decided upstream by the SPARQL optimizer and
//! the SQL is treated as a procedural plan. The executor contributes only
//! what any relational engine obviously would: index lookups for constant
//! equality on indexed columns, hash joins for equi-joins, and streaming
//! filters. FROM items are processed left to right and every item may
//! reference columns of all items before it (lateral-friendly scoping, which
//! `UNNEST` requires).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::database::{Database, ScalarFn};
use crate::error::{exec_err, plan_err, Error, Result};
use crate::hash::{fx_hash_one, FxHashMap, FxHashSet};
use crate::pool::WorkerPool;
use crate::sql::ast::{
    BinaryOp, Expr, Join, JoinKind, OrderItem, Query, QueryBody, Relation, Select, SelectItem,
    TableFactor, UnaryOp,
};
use crate::value::{SqlType, Value};

/// An output column: optional table qualifier plus name (both lowercase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutCol {
    pub qualifier: Option<String>,
    pub name: String,
}

/// A materialized relation: the result of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Rel {
    pub cols: Vec<OutCol>,
    pub rows: Vec<Vec<Value>>,
}

impl Rel {
    pub fn empty() -> Rel {
        Rel { cols: Vec::new(), rows: Vec::new() }
    }

    /// Index of the column named `name` (unqualified match).
    pub fn col_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.cols.iter().position(|c| c.name == lower)
    }

    pub fn column_names(&self) -> Vec<&str> {
        self.cols.iter().map(|c| c.name.as_str()).collect()
    }
}

/// Wall-clock time attributed to each heavy executor phase, for
/// `Database::query_traced`. Phases are measured on the orchestrating thread
/// around whole parallel regions, so a phase's time is elapsed time, not a
/// sum over workers; nested scopes (CTEs, subqueries) accumulate into the
/// same counters. Time outside these four phases (sorting, projection,
/// UNNEST, plumbing) is the remainder against total query time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    pub scan_secs: f64,
    pub build_secs: f64,
    pub probe_secs: f64,
    pub agg_secs: f64,
}

#[derive(Clone, Copy)]
enum Phase {
    Scan,
    Build,
    Probe,
    Agg,
}

#[derive(Default)]
struct PhaseStats {
    scan_ns: AtomicU64,
    build_ns: AtomicU64,
    probe_ns: AtomicU64,
    agg_ns: AtomicU64,
}

impl PhaseStats {
    fn add(&self, phase: Phase, elapsed: std::time::Duration) {
        let counter = match phase {
            Phase::Scan => &self.scan_ns,
            Phase::Build => &self.build_ns,
            Phase::Probe => &self.probe_ns,
            Phase::Agg => &self.agg_ns,
        };
        counter.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    fn timings(&self) -> PhaseTimings {
        let secs = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64 / 1e9;
        PhaseTimings {
            scan_secs: secs(&self.scan_ns),
            build_secs: secs(&self.build_ns),
            probe_secs: secs(&self.probe_ns),
            agg_secs: secs(&self.agg_ns),
        }
    }
}

/// Resources shared by every operator and CTE scope of one query: the
/// worker pool (spawned once, reused by every parallel region), a freelist
/// of row scratch buffers handed to scan workers so decompression scratch
/// survives across operators, and the optional phase-timing counters.
struct QueryShared {
    pool: WorkerPool,
    scratch: Mutex<Vec<Vec<Value>>>,
    phases: Option<PhaseStats>,
}

/// Execution context: database handle, visible CTEs, the row budget that
/// stands in for a query timeout, and the per-query [`QueryShared`]
/// resources. The budget is atomic so morsel workers can charge it
/// concurrently through a shared `&ExecCtx`.
pub struct ExecCtx<'a> {
    pub db: &'a Database,
    ctes: HashMap<String, Arc<Rel>>,
    budget: AtomicU64,
    /// Wall-clock deadline (the paper's 10-minute query timeout), checked at
    /// the same sites as the row budget. `None` costs only a branch.
    deadline: Option<std::time::Instant>,
    shared: Arc<QueryShared>,
}

impl<'a> ExecCtx<'a> {
    pub fn new(db: &'a Database) -> Self {
        Self::with_tracing(db, false)
    }

    /// `traced = true` turns on per-phase timing counters, readable through
    /// [`ExecCtx::phase_timings`] after execution.
    pub fn with_tracing(db: &'a Database, traced: bool) -> Self {
        ExecCtx {
            db,
            ctes: HashMap::new(),
            budget: AtomicU64::new(db.row_budget().unwrap_or(u64::MAX)),
            deadline: db.deadline().map(|d| std::time::Instant::now() + d),
            shared: Arc::new(QueryShared {
                pool: WorkerPool::new(db.threads()),
                scratch: Mutex::new(Vec::new()),
                phases: traced.then(PhaseStats::default),
            }),
        }
    }

    fn pool(&self) -> &WorkerPool {
        &self.shared.pool
    }

    fn threads(&self) -> usize {
        self.shared.pool.threads()
    }

    /// Phase timings accumulated so far; `None` unless built with tracing.
    pub fn phase_timings(&self) -> Option<PhaseTimings> {
        self.shared.phases.as_ref().map(PhaseStats::timings)
    }

    #[inline]
    fn phase_start(&self) -> Option<Instant> {
        self.shared.phases.as_ref().map(|_| Instant::now())
    }

    #[inline]
    fn phase_add(&self, phase: Phase, start: Option<Instant>) {
        if let (Some(stats), Some(t0)) = (&self.shared.phases, start) {
            stats.add(phase, t0.elapsed());
        }
    }

    /// Take a reusable row buffer from the query-wide freelist (or allocate
    /// the first time). Paired with [`ExecCtx::scratch_put`] so scan workers
    /// of successive operators reuse the same decompression scratch.
    fn scratch_take(&self) -> Vec<Value> {
        self.shared.scratch.lock().unwrap().pop().unwrap_or_default()
    }

    fn scratch_put(&self, mut buf: Vec<Value>) {
        buf.clear();
        self.shared.scratch.lock().unwrap().push(buf);
    }

    fn charge(&self, n: usize) -> Result<()> {
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                return Err(Error::Timeout);
            }
        }
        let n = n as u64;
        // Deduct atomically; concurrent workers race on the same counter, so
        // the sum of successful charges never exceeds the initial budget.
        self.budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| left.checked_sub(n))
            .map(|_| ())
            .map_err(|_| Error::LimitExceeded)
    }
}

// ---------------------------------------------------------------------------
// Morsel-driven parallelism
// ---------------------------------------------------------------------------

/// Rows per morsel. Large enough that per-morsel overhead (one atomic
/// fetch_add, one Vec) is negligible; small enough that a typical scan
/// splits into many work units for load balancing.
pub const MORSEL_ROWS: usize = 4096;

/// Run `work` over fixed-size morsels of `0..n` on the query's worker pool
/// and concatenate the outputs **in morsel order**, so the result is
/// identical to a sequential left-to-right pass regardless of thread count.
fn parallel_morsels<R, F>(ctx: &ExecCtx<'_>, n: usize, work: F) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Result<Vec<R>> + Sync,
{
    parallel_morsels_scratch(ctx.pool(), n, &|| (), &|_| (), |range, _| work(range))
}

/// [`parallel_morsels`] with per-worker scratch state: each participating
/// thread gets one `mk_scratch()` value that lives across all the morsels it
/// processes and is handed to `fini_scratch` when the region ends — how scan
/// workers keep one decompression buffer per thread instead of one per
/// morsel, and return it to the query-wide freelist afterwards.
///
/// Workers pull morsel indices from a shared atomic counter (classic
/// morsel-driven scheduling: fast workers take more morsels). On error the
/// remaining morsels are abandoned and the first error in morsel order is
/// returned.
fn parallel_morsels_scratch<R, S, F>(
    pool: &WorkerPool,
    n: usize,
    mk_scratch: &(dyn Fn() -> S + Sync),
    fini_scratch: &(dyn Fn(S) + Sync),
    work: F,
) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(std::ops::Range<usize>, &mut S) -> Result<Vec<R>> + Sync,
{
    let morsels = n.div_ceil(MORSEL_ROWS);
    if pool.threads().min(morsels) <= 1 {
        let mut scratch = mk_scratch();
        let mut out = Vec::new();
        let mut first_err = None;
        for m in 0..morsels {
            match work(m * MORSEL_ROWS..((m + 1) * MORSEL_ROWS).min(n), &mut scratch) {
                Ok(mut v) => out.append(&mut v),
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        fini_scratch(scratch);
        return match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        };
    }

    let next = AtomicUsize::new(0);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let slots: Mutex<Vec<Option<Result<Vec<R>>>>> =
        Mutex::new((0..morsels).map(|_| None).collect());
    pool.broadcast(&|_worker| {
        let mut scratch = mk_scratch();
        loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let m = next.fetch_add(1, Ordering::Relaxed);
            if m >= morsels {
                break;
            }
            let res = work(m * MORSEL_ROWS..((m + 1) * MORSEL_ROWS).min(n), &mut scratch);
            if res.is_err() {
                failed.store(true, Ordering::Relaxed);
            }
            slots.lock().unwrap()[m] = Some(res);
        }
        fini_scratch(scratch);
    });

    let slots = slots.into_inner().unwrap();
    // Surface the first error in morsel order for determinism.
    for slot in &slots {
        if let Some(Err(e)) = slot {
            return Err(e.clone());
        }
    }
    let mut out = Vec::new();
    for slot in slots {
        if let Some(Ok(mut v)) = slot {
            out.append(&mut v);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Compiled expressions
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub enum CExpr {
    Col(usize),
    Lit(Value),
    Binary { op: BinaryOp, left: Box<CExpr>, right: Box<CExpr> },
    Unary { op: UnaryOp, expr: Box<CExpr> },
    IsNull { expr: Box<CExpr>, negated: bool },
    InList { expr: Box<CExpr>, list: Vec<CExpr>, negated: bool },
    Like { expr: Box<CExpr>, pattern: Box<CExpr>, negated: bool },
    Case { branches: Vec<(CExpr, CExpr)>, else_expr: Option<Box<CExpr>> },
    Cast { expr: Box<CExpr>, ty: SqlType },
    Call {
        /// Retained for plan debugging output.
        #[allow(dead_code)]
        name: String,
        func: ScalarFn,
        args: Vec<CExpr>,
    },
}

/// Name-resolution scope: the columns visible to an expression.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    pub cols: Vec<OutCol>,
}

impl Scope {
    pub fn from_cols(cols: &[OutCol]) -> Scope {
        Scope { cols: cols.to_vec() }
    }

    /// Resolve `qualifier.name`; unqualified names must be unambiguous.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let qualifier = qualifier.map(str::to_ascii_lowercase);
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            let matches = match &qualifier {
                Some(q) => c.qualifier.as_deref() == Some(q.as_str()) && c.name == name,
                None => c.name == name,
            };
            if matches {
                if found.is_some() {
                    return plan_err(format!("ambiguous column reference {name:?}"));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            Error::Plan(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))
        })
    }

    /// True when the expression only references columns resolvable here.
    pub fn covers(&self, expr: &Expr) -> bool {
        collect_columns(expr).iter().all(|(q, n)| self.resolve(q.as_deref(), n).is_ok())
    }
}

fn collect_columns(expr: &Expr) -> Vec<(Option<String>, String)> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<(Option<String>, String)>) {
        match e {
            Expr::Column { qualifier, name } => out.push((qualifier.clone(), name.clone())),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Unary { expr, .. } => walk(expr, out),
            Expr::IsNull { expr, .. } => walk(expr, out),
            Expr::InList { expr, list, .. } => {
                walk(expr, out);
                list.iter().for_each(|e| walk(e, out));
            }
            Expr::Like { expr, pattern, .. } => {
                walk(expr, out);
                walk(pattern, out);
            }
            Expr::Case { branches, else_expr } => {
                for (c, v) in branches {
                    walk(c, out);
                    walk(v, out);
                }
                if let Some(e) = else_expr {
                    walk(e, out);
                }
            }
            Expr::Cast { expr, .. } => walk(expr, out),
            Expr::Func { args, .. } => args.iter().for_each(|e| walk(e, out)),
        }
    }
    walk(expr, &mut out);
    out
}

/// Compile an AST expression against a scope. Aggregate calls are rejected
/// here; the aggregation pass rewrites them into column references first.
pub fn compile(expr: &Expr, scope: &Scope, db: &Database) -> Result<CExpr> {
    Ok(match expr {
        Expr::Column { qualifier, name } => {
            CExpr::Col(scope.resolve(qualifier.as_deref(), name)?)
        }
        Expr::Literal(v) => CExpr::Lit(v.clone()),
        Expr::Binary { op, left, right } => CExpr::Binary {
            op: *op,
            left: Box::new(compile(left, scope, db)?),
            right: Box::new(compile(right, scope, db)?),
        },
        Expr::Unary { op, expr } => {
            CExpr::Unary { op: *op, expr: Box::new(compile(expr, scope, db)?) }
        }
        Expr::IsNull { expr, negated } => {
            CExpr::IsNull { expr: Box::new(compile(expr, scope, db)?), negated: *negated }
        }
        Expr::InList { expr, list, negated } => CExpr::InList {
            expr: Box::new(compile(expr, scope, db)?),
            list: list.iter().map(|e| compile(e, scope, db)).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => CExpr::Like {
            expr: Box::new(compile(expr, scope, db)?),
            pattern: Box::new(compile(pattern, scope, db)?),
            negated: *negated,
        },
        Expr::Case { branches, else_expr } => CExpr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((compile(c, scope, db)?, compile(v, scope, db)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(compile(e, scope, db)?)),
                None => None,
            },
        },
        Expr::Cast { expr, ty } => {
            CExpr::Cast { expr: Box::new(compile(expr, scope, db)?), ty: *ty }
        }
        Expr::Func { name, args, star, distinct } => {
            if *star || *distinct || is_aggregate(name) {
                return plan_err(format!("aggregate {name:?} not allowed in this context"));
            }
            let func = db
                .scalar_function(name)
                .ok_or_else(|| Error::Plan(format!("unknown function {name:?}")))?;
            CExpr::Call {
                name: name.clone(),
                func,
                args: args.iter().map(|e| compile(e, scope, db)).collect::<Result<_>>()?,
            }
        }
    })
}

pub fn is_aggregate(name: &str) -> bool {
    matches!(name, "count" | "sum" | "min" | "max" | "avg")
}

/// Row abstraction for expression evaluation. Implemented for plain slices
/// and for [`SplitRow`], a zero-copy view of a left row logically
/// concatenated with a right row — how the hash join evaluates residual and
/// stream predicates on candidate matches *before* materializing them.
pub trait RowAccess {
    fn col(&self, i: usize) -> &Value;
}

impl RowAccess for [Value] {
    #[inline]
    fn col(&self, i: usize) -> &Value {
        &self[i]
    }
}

impl RowAccess for Vec<Value> {
    #[inline]
    fn col(&self, i: usize) -> &Value {
        &self[i]
    }
}

/// A left row and a right row viewed as one combined row, without copying.
#[derive(Clone, Copy)]
pub struct SplitRow<'a> {
    pub left: &'a [Value],
    pub right: &'a [Value],
}

impl RowAccess for SplitRow<'_> {
    #[inline]
    fn col(&self, i: usize) -> &Value {
        if i < self.left.len() {
            &self.left[i]
        } else {
            &self.right[i - self.left.len()]
        }
    }
}

impl CExpr {
    pub fn eval<R: RowAccess + ?Sized>(&self, row: &R) -> Result<Value> {
        Ok(match self {
            // These clones never copy string bytes: `Value::Str` holds an
            // `Arc<str>`, so Col/Lit cost a refcount bump (or an 8-byte copy
            // for Int/Double/Bool).
            CExpr::Col(i) => row.col(*i).clone(),
            CExpr::Lit(v) => v.clone(),
            CExpr::Binary { op, left, right } => {
                eval_binary(*op, left.eval(row)?, right.eval(row)?)?
            }
            CExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                match op {
                    UnaryOp::Not => match to_bool3(&v)? {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Value::Null,
                        Value::Int(i) => Value::Int(-i),
                        Value::Double(d) => Value::Double(-d),
                        other => return exec_err(format!("cannot negate {}", other.type_name())),
                    },
                }
            }
            CExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Value::Bool(v.is_null() != *negated)
            }
            CExpr::InList { expr, list, negated } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                let mut found = false;
                for item in list {
                    let iv = item.eval(row)?;
                    match v.sql_eq(&iv) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if found {
                    Value::Bool(!*negated)
                } else if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                }
            }
            CExpr::Like { expr, pattern, negated } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                match (v.as_str(), p.as_str()) {
                    (Some(s), Some(pat)) => Value::Bool(like_match(s, pat) != *negated),
                    _ => Value::Null,
                }
            }
            CExpr::Case { branches, else_expr } => {
                for (cond, val) in branches {
                    if to_bool3(&cond.eval(row)?)? == Some(true) {
                        return val.eval(row);
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row)?,
                    None => Value::Null,
                }
            }
            CExpr::Cast { expr, ty } => cast_value(expr.eval(row)?, *ty),
            CExpr::Call { func, args, .. } => {
                if let [arg] = args.as_slice() {
                    // Single-argument calls (the common shape for the RDF_*
                    // dictionary functions) skip the per-call argument Vec.
                    let v = arg.eval(row)?;
                    func(std::slice::from_ref(&v))?
                } else {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(a.eval(row)?);
                    }
                    func(&vals)?
                }
            }
        })
    }

    /// Evaluate as a WHERE/ON condition: NULL and FALSE both reject.
    pub fn eval_truthy<R: RowAccess + ?Sized>(&self, row: &R) -> Result<bool> {
        // Equality against a column — the hot shape for pushed scan filters
        // and join residuals — compares in place instead of cloning both
        // operands into owned `Value`s. `sql_eq == Some(true)` is exactly
        // what the generic path reduces to (NULL compares reject).
        if let CExpr::Binary { op: BinaryOp::Eq, left, right } = self {
            let pair = match (&**left, &**right) {
                (CExpr::Col(i), CExpr::Lit(v)) | (CExpr::Lit(v), CExpr::Col(i)) => {
                    Some((row.col(*i), v))
                }
                (CExpr::Col(a), CExpr::Col(b)) => Some((row.col(*a), row.col(*b))),
                _ => None,
            };
            if let Some((l, r)) = pair {
                return Ok(l.sql_eq(r) == Some(true));
            }
        }
        Ok(to_bool3(&self.eval(row)?)? == Some(true))
    }
}

fn to_bool3(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => exec_err(format!("expected BOOLEAN, found {}", other.type_name())),
    }
}

fn eval_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    use BinaryOp::*;
    Ok(match op {
        And => {
            let (a, b) = (to_bool3(&l)?, to_bool3(&r)?);
            match (a, b) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            }
        }
        Or => {
            let (a, b) = (to_bool3(&l)?, to_bool3(&r)?);
            match (a, b) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            }
        }
        Eq => l.sql_eq(&r).map(Value::Bool).unwrap_or(Value::Null),
        NotEq => l.sql_eq(&r).map(|b| Value::Bool(!b)).unwrap_or(Value::Null),
        Lt => cmp_to_bool(&l, &r, |o| o == std::cmp::Ordering::Less),
        LtEq => cmp_to_bool(&l, &r, |o| o != std::cmp::Ordering::Greater),
        Gt => cmp_to_bool(&l, &r, |o| o == std::cmp::Ordering::Greater),
        GtEq => cmp_to_bool(&l, &r, |o| o != std::cmp::Ordering::Less),
        Add | Sub | Mul | Div => arith(op, &l, &r),
        Concat => match (&l, &r) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (a, b) => Value::str(format!("{a}{b}")),
        },
    })
}

fn cmp_to_bool(l: &Value, r: &Value, pred: impl Fn(std::cmp::Ordering) -> bool) -> Value {
    match l.sql_cmp(r) {
        Some(o) => Value::Bool(pred(o)),
        None => Value::Null,
    }
}

/// Arithmetic: NULL-propagating, numeric-only. A non-numeric operand yields
/// NULL (lenient, so FILTERs over heterogeneous RDF literals do not abort).
fn arith(op: BinaryOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            BinaryOp::Add => a.checked_add(*b).map(Value::Int).unwrap_or(Value::Null),
            BinaryOp::Sub => a.checked_sub(*b).map(Value::Int).unwrap_or(Value::Null),
            BinaryOp::Mul => a.checked_mul(*b).map(Value::Int).unwrap_or(Value::Null),
            BinaryOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
            _ => unreachable!(),
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => match op {
            BinaryOp::Add => Value::Double(a + b),
            BinaryOp::Sub => Value::Double(a - b),
            BinaryOp::Mul => Value::Double(a * b),
            BinaryOp::Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Double(a / b)
                }
            }
            _ => unreachable!(),
        },
        _ => Value::Null,
    }
}

fn cast_value(v: Value, ty: SqlType) -> Value {
    if v.is_null() {
        return Value::Null;
    }
    match ty {
        SqlType::Int => match &v {
            Value::Int(_) => v,
            Value::Double(d) => Value::Int(*d as i64),
            Value::Str(s) => s.trim().parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
            Value::Bool(b) => Value::Int(*b as i64),
            Value::Null => unreachable!(),
        },
        SqlType::Double => match &v {
            Value::Double(_) => v,
            Value::Int(i) => Value::Double(*i as f64),
            Value::Str(s) => s.trim().parse::<f64>().map(Value::Double).unwrap_or(Value::Null),
            Value::Bool(b) => Value::Double(*b as i64 as f64),
            Value::Null => unreachable!(),
        },
        // A Text→Text cast is the identity: reuse the existing `Arc<str>`
        // instead of reallocating through `to_string`.
        SqlType::Text => match v {
            Value::Str(_) => v,
            other => Value::str(other.to_string()),
        },
        SqlType::Bool => match &v {
            Value::Bool(_) => v,
            Value::Int(i) => Value::Bool(*i != 0),
            Value::Str(s) => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Value::Bool(true),
                "false" | "f" | "0" => Value::Bool(false),
                _ => Value::Null,
            },
            _ => Value::Null,
        },
    }
}

/// SQL LIKE with `%` and `_` wildcards.
///
/// Iterative two-pointer algorithm: on a mismatch after a `%`, restart just
/// past the character the last `%` previously absorbed. Each pointer only
/// moves forward, so the worst case is O(|s|·|p|) — the naive recursion is
/// exponential on patterns like `%a%a%a%…` against a non-matching string.
/// Operates directly on the UTF-8 byte iterators; no per-call `Vec<char>`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let text: &[u8] = s.as_bytes();
    let pat: &[u8] = pattern.as_bytes();
    // Byte cursors. `_` must consume one *character*, so when it matches we
    // skip the whole UTF-8 sequence (continuation bytes start with 0b10).
    let (mut ti, mut pi) = (0usize, 0usize);
    // Restart state for the most recent `%`: pattern position after it, and
    // the text position it would next try absorbing one more char from.
    let (mut star_p, mut star_t): (Option<usize>, usize) = (None, 0);

    fn char_len(b: &[u8], i: usize) -> usize {
        let mut n = 1;
        while i + n < b.len() && b[i + n] & 0xC0 == 0x80 {
            n += 1;
        }
        n
    }

    while ti < text.len() {
        if pi < pat.len() {
            match pat[pi] {
                b'%' => {
                    star_p = Some(pi + 1);
                    star_t = ti;
                    pi += 1;
                    continue;
                }
                b'_' => {
                    ti += char_len(text, ti);
                    pi += 1;
                    continue;
                }
                c if c == text[ti] => {
                    ti += 1;
                    pi += 1;
                    continue;
                }
                _ => {}
            }
        }
        match star_p {
            Some(sp) => {
                // Let the last `%` absorb one more character and retry.
                star_t += char_len(text, star_t);
                ti = star_t;
                pi = sp;
            }
            None => return false,
        }
    }
    // Text exhausted: any trailing pattern must be all `%`.
    pat[pi..].iter().all(|&c| c == b'%')
}

// ---------------------------------------------------------------------------
// Query execution
// ---------------------------------------------------------------------------

pub fn exec_query(q: &Query, ctx: &ExecCtx<'_>) -> Result<Rel> {
    // CTEs are visible to later CTEs and to the body; inner scopes shadow.
    let mut local = ExecCtx {
        db: ctx.db,
        ctes: ctx.ctes.clone(),
        budget: AtomicU64::new(ctx.budget.load(Ordering::Relaxed)),
        deadline: ctx.deadline,
        // CTE scopes share the query's pool, scratch and timing counters.
        shared: ctx.shared.clone(),
    };
    for (name, cte_query) in &q.ctes {
        let rel = exec_query(cte_query, &local)?;
        local.ctes.insert(name.to_ascii_lowercase(), Arc::new(rel));
    }
    let mut rel = exec_body(&q.body, &local)?;
    ctx.budget.store(local.budget.load(Ordering::Relaxed), Ordering::Relaxed);

    if !q.order_by.is_empty() {
        sort_rel(&mut rel, &q.order_by, ctx)?;
    }
    apply_limit(&mut rel, q.limit, q.offset);
    Ok(rel)
}

fn exec_body(body: &QueryBody, ctx: &ExecCtx<'_>) -> Result<Rel> {
    match body {
        QueryBody::Select(sel) => exec_select(sel, ctx),
        QueryBody::Union { left, right, all } => {
            let mut l = exec_body(left, ctx)?;
            let r = exec_body(right, ctx)?;
            if l.cols.len() != r.cols.len() {
                return plan_err(format!(
                    "UNION arity mismatch: {} vs {}",
                    l.cols.len(),
                    r.cols.len()
                ));
            }
            ctx.charge(r.rows.len())?;
            l.rows.extend(r.rows);
            if !*all {
                dedupe(&mut l, ctx);
            }
            Ok(l)
        }
    }
}

/// Remove duplicate rows, keeping first occurrences, without cloning any
/// row: rows are pre-hashed (in parallel morsels), bucketed by hash, and
/// compared against earlier bucket members only; survivors are kept by an
/// in-place `retain`.
///
/// Large inputs resolve duplicates in parallel by hash partition: equal rows
/// hash equal, so no duplicate pair ever straddles partitions, and each
/// partition's row-id list stays ascending, so "first occurrence wins" is
/// preserved exactly. The keep-mask is a pure function of the rows — the
/// same at every thread count.
fn dedupe(rel: &mut Rel, ctx: &ExecCtx<'_>) {
    use std::hash::{Hash, Hasher};
    let n = rel.rows.len();
    if n <= 1 {
        return;
    }
    let rows = &rel.rows;
    let hashes: Vec<u64> = parallel_morsels(ctx, n, |range| {
        Ok(range
            .map(|i| {
                let mut h = crate::hash::FxHasher::default();
                rows[i].hash(&mut h);
                h.finish()
            })
            .collect())
    })
    .expect("hashing is infallible");

    let mut keep = vec![true; n];
    if n >= PARALLEL_BUILD_MIN && ctx.threads() > 1 {
        // Scatter row ids into hash partitions (a cheap sequential integer
        // pass), then workers claim whole partitions and resolve duplicates
        // within each independently.
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); BUILD_PARTITIONS];
        for (i, h) in hashes.iter().enumerate() {
            parts[(h >> PARTITION_SHIFT) as usize].push(i as u32);
        }
        let next = AtomicUsize::new(0);
        let dead: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        let (parts_ref, hashes_ref) = (&parts, &hashes);
        ctx.pool().broadcast(&|_worker| {
            let mut local_dead: Vec<u32> = Vec::new();
            loop {
                let p = next.fetch_add(1, Ordering::Relaxed);
                if p >= BUILD_PARTITIONS {
                    break;
                }
                let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
                for &i in &parts_ref[p] {
                    let bucket = buckets.entry(hashes_ref[i as usize]).or_default();
                    if bucket.iter().any(|&j| rows[j as usize] == rows[i as usize]) {
                        local_dead.push(i);
                    } else {
                        bucket.push(i);
                    }
                }
            }
            dead.lock().unwrap().append(&mut local_dead);
        });
        for i in dead.into_inner().unwrap() {
            keep[i as usize] = false;
        }
    } else {
        let mut buckets: FxHashMap<u64, Vec<usize>> =
            FxHashMap::with_capacity_and_hasher(n, crate::hash::FxBuildHasher::default());
        for i in 0..n {
            let bucket = buckets.entry(hashes[i]).or_default();
            if bucket.iter().any(|&j| rows[j] == rows[i]) {
                keep[i] = false;
            } else {
                bucket.push(i);
            }
        }
    }
    let mut i = 0;
    rel.rows.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

fn sort_rel(rel: &mut Rel, order_by: &[OrderItem], ctx: &ExecCtx<'_>) -> Result<()> {
    // Resolve each item: positional integer, output column, or expression
    // over output columns.
    let scope = Scope::from_cols(&rel.cols);
    let db = ctx.db;
    let mut keys: Vec<(CExpr, bool)> = Vec::new();
    for item in order_by {
        let cexpr = match &item.expr {
            Expr::Literal(Value::Int(n)) => {
                let i = *n as usize;
                if i == 0 || i > rel.cols.len() {
                    return plan_err(format!("ORDER BY position {i} out of range"));
                }
                CExpr::Col(i - 1)
            }
            // Projected columns lose their table qualifiers, but SQL permits
            // `ORDER BY t.col`; retry with qualifiers stripped when the
            // qualified reference no longer resolves.
            e => compile(e, &scope, db).or_else(|_| compile(&strip_qualifiers(e), &scope, db))?,
        };
        keys.push((cexpr, item.asc));
    }
    // Decorate-sort-undecorate; key extraction (the expression-evaluation
    // part) runs morsel-parallel, the comparison sort stays sequential and
    // stable so equal keys preserve input order at every thread count.
    let rows = &rel.rows;
    let keys_ref = &keys;
    let extracted: Vec<Vec<Value>> = parallel_morsels(ctx, rows.len(), |range| {
        range
            .map(|i| keys_ref.iter().map(|(k, _)| k.eval(&rows[i])).collect::<Result<Vec<_>>>())
            .collect()
    })?;
    let mut decorated: Vec<(Vec<Value>, Vec<Value>)> =
        extracted.into_iter().zip(rel.rows.drain(..)).collect();
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, asc)) in keys.iter().enumerate() {
            let o = ka[i].total_cmp(&kb[i]);
            if o != std::cmp::Ordering::Equal {
                return if *asc { o } else { o.reverse() };
            }
        }
        std::cmp::Ordering::Equal
    });
    rel.rows = decorated.into_iter().map(|(_, r)| r).collect();
    Ok(())
}

fn strip_qualifiers(e: &Expr) -> Expr {
    match e {
        Expr::Column { name, .. } => Expr::Column { qualifier: None, name: name.clone() },
        Expr::Literal(_) => e.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(strip_qualifiers(left)),
            right: Box::new(strip_qualifiers(right)),
        },
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(strip_qualifiers(expr)) }
        }
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(strip_qualifiers(expr)), negated: *negated }
        }
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(strip_qualifiers(expr)),
            list: list.iter().map(strip_qualifiers).collect(),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(strip_qualifiers(expr)),
            pattern: Box::new(strip_qualifiers(pattern)),
            negated: *negated,
        },
        Expr::Case { branches, else_expr } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (strip_qualifiers(c), strip_qualifiers(v)))
                .collect(),
            else_expr: else_expr.as_ref().map(|x| Box::new(strip_qualifiers(x))),
        },
        Expr::Cast { expr, ty } => {
            Expr::Cast { expr: Box::new(strip_qualifiers(expr)), ty: *ty }
        }
        Expr::Func { name, args, star, distinct } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(strip_qualifiers).collect(),
            star: *star,
            distinct: *distinct,
        },
    }
}

fn apply_limit(rel: &mut Rel, limit: Option<u64>, offset: Option<u64>) {
    if let Some(off) = offset {
        let off = (off as usize).min(rel.rows.len());
        rel.rows.drain(..off);
    }
    if let Some(lim) = limit {
        rel.rows.truncate(lim as usize);
    }
}

/// One linearized FROM step.
struct Step<'a> {
    relation: &'a Relation,
    alias: Option<&'a str>,
    kind: JoinKind,
    on: Option<&'a Expr>,
}

fn linearize_from(from: &[TableFactor]) -> Vec<Step<'_>> {
    let mut steps = Vec::new();
    for factor in from {
        steps.push(Step {
            relation: &factor.relation,
            alias: factor.alias.as_deref(),
            kind: JoinKind::Inner,
            on: None,
        });
        for Join { kind, relation, alias, on } in &factor.joins {
            steps.push(Step { relation, alias: alias.as_deref(), kind: *kind, on: Some(on) });
        }
    }
    steps
}

fn exec_select(sel: &Select, ctx: &ExecCtx<'_>) -> Result<Rel> {
    let where_conjuncts: Vec<&Expr> =
        sel.where_clause.as_ref().map(|w| w.conjuncts()).unwrap_or_default();

    // FROM: fold steps left to right.
    let mut cur: Option<Rel> = None;
    for step in linearize_from(&sel.from) {
        cur = Some(apply_step(cur, &step, &where_conjuncts, ctx)?);
    }
    let mut rel = match cur {
        Some(r) => r,
        // SELECT without FROM: a single empty row.
        None => Rel { cols: Vec::new(), rows: vec![Vec::new()] },
    };

    // WHERE (full residual re-check; pushdowns were best-effort hints).
    // The predicate is evaluated morsel-parallel into a keep-mask; the
    // in-order retain keeps the surviving rows in their original order.
    if let Some(w) = &sel.where_clause {
        let scope = Scope::from_cols(&rel.cols);
        let cond = compile(w, &scope, ctx.db)?;
        let rows = &rel.rows;
        let keep: Vec<bool> = parallel_morsels(ctx, rows.len(), |range| {
            range.map(|i| cond.eval_truthy(&rows[i])).collect()
        })?;
        let mut i = 0;
        rel.rows.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    // GROUP BY / aggregates.
    let has_aggs = select_has_aggregates(sel);
    if has_aggs || !sel.group_by.is_empty() {
        rel = aggregate(sel, rel, ctx)?;
        // After aggregation the projection/having were already applied.
        if sel.distinct {
            dedupe(&mut rel, ctx);
        }
        return Ok(rel);
    }

    // Projection.
    rel = project(&sel.projection, rel, ctx)?;
    if sel.distinct {
        dedupe(&mut rel, ctx);
    }
    Ok(rel)
}

fn apply_step(
    cur: Option<Rel>,
    step: &Step<'_>,
    where_conjuncts: &[&Expr],
    ctx: &ExecCtx<'_>,
) -> Result<Rel> {
    // UNNEST is lateral over the current relation.
    if let Relation::Unnest { tuples, columns } = step.relation {
        let cur = cur.ok_or_else(|| Error::Plan("UNNEST cannot be the first FROM item".into()))?;
        return unnest(cur, tuples, columns, step.alias, ctx);
    }

    // ON conjuncts that reference only the new factor can be pushed into its
    // scan; for inner steps, single-factor WHERE conjuncts can be pushed too.
    let alias = step.alias.map(str::to_ascii_lowercase);
    let on_conjuncts: Vec<&Expr> = step.on.map(|e| e.conjuncts()).unwrap_or_default();

    let right_cols = relation_cols(step.relation, alias.as_deref(), ctx)?;
    let right_scope = Scope::from_cols(&right_cols);

    let mut push: Vec<&Expr> = Vec::new();
    for c in &on_conjuncts {
        if right_scope.covers(c) {
            push.push(c);
        }
    }
    if step.kind == JoinKind::Inner {
        for c in where_conjuncts {
            if right_scope.covers(c) && !expr_is_trivial(c) {
                push.push(c);
            }
        }
    }
    let Some(left) = cur else {
        // First factor: scan (index-assisted when a pushed predicate allows).
        return scan_relation(step.relation, alias.as_deref(), right_cols, &push, ctx);
    };

    // Index nested-loop join: when the new factor is a base table and some
    // equi-condition probes an indexed column with a left-side expression,
    // loop over the (usually small) left relation and probe the index
    // instead of materializing and hashing the whole table. This is what a
    // relational engine does for `prior ⋈ DPH ON dph.entry = prior.v`.
    if let Relation::Named(name) = step.relation {
        let lower = name.to_ascii_lowercase();
        if !ctx.ctes.contains_key(&lower) {
            let left_scope = Scope::from_cols(&left.cols);
            let conds: Vec<&Expr> = step
                .on
                .map(|e| e.conjuncts())
                .unwrap_or_default()
                .into_iter()
                .chain(if step.kind == JoinKind::Inner {
                    where_conjuncts.to_vec()
                } else {
                    Vec::new()
                })
                .collect();
            let mut probe: Option<(usize, CExpr)> = None;
            for c in &conds {
                if let Expr::Binary { op: BinaryOp::Eq, left: a, right: b } = c {
                    for (col_side, other) in [(a, b), (b, a)] {
                        if let Expr::Column { qualifier, name: cname } = col_side.as_ref() {
                            let table = ctx.db.table(&lower).expect("checked in relation_cols");
                            let qual_ok = match qualifier {
                                Some(q) => {
                                    let q = q.to_ascii_lowercase();
                                    alias.as_deref() == Some(q.as_str()) || q == lower
                                }
                                None => true,
                            };
                            if qual_ok
                                && table.index_on(cname).is_some()
                                && left_scope.covers(other)
                                && !expr_is_trivial(other)
                            {
                                let ci = table.schema.column_index(cname).unwrap();
                                probe = Some((ci, compile(other, &left_scope, ctx.db)?));
                            }
                        }
                        if probe.is_some() {
                            break;
                        }
                    }
                }
                if probe.is_some() {
                    break;
                }
            }
            if let Some((ci, left_key)) = probe {
                return index_nested_loop(
                    left, &lower, right_cols, ci, left_key, &push, step, where_conjuncts, ctx,
                );
            }
        }
    }

    let right = scan_relation(step.relation, alias.as_deref(), right_cols, &push, ctx)?;

    // Find equi-join keys `left_expr = right_expr` among ON conjuncts and
    // (for inner joins) WHERE conjuncts.
    let left_scope = Scope::from_cols(&left.cols);
    let stream_filters = stream_filters(&left, &right.cols, where_conjuncts, ctx)?;
    let mut lkeys: Vec<CExpr> = Vec::new();
    let mut rkeys: Vec<CExpr> = Vec::new();
    let mut residual_on: Vec<&Expr> = Vec::new();
    let key_sources: Vec<&Expr> = if step.kind == JoinKind::Inner {
        on_conjuncts.iter().copied().chain(where_conjuncts.iter().copied()).collect()
    } else {
        on_conjuncts.clone()
    };
    let mut used_as_key = vec![false; on_conjuncts.len()];
    for (i, c) in key_sources.iter().enumerate() {
        if let Expr::Binary { op: BinaryOp::Eq, left: a, right: b } = c {
            let (la, ra) = (left_scope.covers(a), right_scope.covers(a));
            let (lb, rb) = (left_scope.covers(b), right_scope.covers(b));
            if la && rb && !ra {
                lkeys.push(compile(a, &left_scope, ctx.db)?);
                rkeys.push(compile(b, &right_scope, ctx.db)?);
                if i < on_conjuncts.len() {
                    used_as_key[i] = true;
                }
                continue;
            }
            if lb && ra && !rb {
                lkeys.push(compile(b, &left_scope, ctx.db)?);
                rkeys.push(compile(a, &right_scope, ctx.db)?);
                if i < on_conjuncts.len() {
                    used_as_key[i] = true;
                }
                continue;
            }
        }
    }
    for (i, c) in on_conjuncts.iter().enumerate() {
        if !used_as_key[i] {
            residual_on.push(c);
        }
    }

    join(left, right, lkeys, rkeys, residual_on, step.kind, &stream_filters, ctx)
}

/// WHERE conjuncts that become fully evaluable at this join step (they
/// reference right-side columns) are applied to each *emitted* row — after
/// the match/null-extension decision, so outer-join semantics are
/// preserved; the final WHERE re-checks them, making this purely an early
/// filter. This is what keeps e.g. `rs.elm = prior.v` from materializing
/// the whole multi-value expansion.
fn stream_filters(
    left: &Rel,
    right_cols: &[OutCol],
    where_conjuncts: &[&Expr],
    ctx: &ExecCtx<'_>,
) -> Result<Vec<CExpr>> {
    let left_scope = Scope::from_cols(&left.cols);
    let mut cols = left.cols.clone();
    cols.extend(right_cols.iter().cloned());
    let combined = Scope::from_cols(&cols);
    let mut out = Vec::new();
    for c in where_conjuncts {
        if !expr_is_trivial(c) && combined.covers(c) && !left_scope.covers(c) {
            out.push(compile(c, &combined, ctx.db)?);
        }
    }
    Ok(out)
}

fn expr_is_trivial(e: &Expr) -> bool {
    collect_columns(e).is_empty()
}

/// Output columns a relation will produce, *without* materializing base
/// tables (subqueries are not pre-resolved; their pushdown happens after
/// execution inside [`scan_relation`]).
fn relation_cols(relation: &Relation, alias: Option<&str>, ctx: &ExecCtx<'_>) -> Result<Vec<OutCol>> {
    match relation {
        Relation::Named(name) => {
            let lower = name.to_ascii_lowercase();
            let qual = alias.map(str::to_ascii_lowercase).unwrap_or_else(|| lower.clone());
            if let Some(cte) = ctx.ctes.get(&lower) {
                return Ok(cte
                    .cols
                    .iter()
                    .map(|c| OutCol { qualifier: Some(qual.clone()), name: c.name.clone() })
                    .collect());
            }
            let table = ctx
                .db
                .table(&lower)
                .ok_or_else(|| Error::Plan(format!("unknown table {name:?}")))?;
            Ok(table
                .schema
                .columns
                .iter()
                .map(|c| OutCol { qualifier: Some(qual.clone()), name: c.name.clone() })
                .collect())
        }
        Relation::Subquery(q) => {
            // Column names of a subquery are those of its SELECT list; we
            // cannot know them cheaply without planning, so be conservative:
            // no pushdown (empty scope) — correctness is preserved by the
            // final WHERE re-check.
            let _ = q;
            Ok(Vec::new())
        }
        Relation::Unnest { .. } => unreachable!("handled in apply_step"),
    }
}

/// Materialize a relation applying pushdown predicates; for base tables an
/// equality predicate on an indexed column turns the scan into a probe.
fn scan_relation(
    relation: &Relation,
    alias: Option<&str>,
    cols: Vec<OutCol>,
    push: &[&Expr],
    ctx: &ExecCtx<'_>,
) -> Result<Rel> {
    match relation {
        Relation::Named(name) => {
            let lower = name.to_ascii_lowercase();
            if let Some(cte) = ctx.ctes.get(&lower) {
                let rel = Rel { cols, rows: cte.rows.clone() };
                return filter_rows(rel, push, ctx);
            }
            let table = ctx.db.table(&lower).expect("checked in relation_cols");
            let scope = Scope::from_cols(&cols);
            let mut conds: Vec<CExpr> =
                push.iter().map(|e| compile(e, &scope, ctx.db)).collect::<Result<_>>()?;
            order_by_cost(&mut conds);

            // Index probe: find `col = literal` (either orientation) among the
            // pushed conjuncts where `col` has an index.
            let mut probe: Option<(usize, Value)> = None;
            for c in push {
                if let Expr::Binary { op: BinaryOp::Eq, left, right } = c {
                    let pair = match (left.as_ref(), right.as_ref()) {
                        (Expr::Column { qualifier, name }, Expr::Literal(v))
                        | (Expr::Literal(v), Expr::Column { qualifier, name }) => {
                            Some((qualifier, name, v))
                        }
                        _ => None,
                    };
                    if let Some((q, n, v)) = pair {
                        if scope.resolve(q.as_deref(), n).is_ok()
                            && table.index_on(n).is_some()
                        {
                            let ci = table.schema.column_index(n).unwrap();
                            probe = Some((ci, v.clone()));
                            break;
                        }
                    }
                }
            }

            let width = table.width();
            let scan_t0 = ctx.phase_start();
            let rows = match probe {
                Some((ci, key)) => {
                    // Index probes touch few rows; stay sequential.
                    let index = table
                        .index_on(&table.schema.columns[ci].name)
                        .expect("index checked above");
                    let mut rows = Vec::new();
                    for &rid in index.lookup(&key) {
                        let vals = table.row_values(rid);
                        if eval_all(&conds, &vals)? {
                            rows.push(vals);
                        }
                    }
                    ctx.charge(rows.len())?;
                    rows
                }
                None => {
                    // Morsel-parallel full scan: each worker decompresses and
                    // filters its morsel, charging the budget as it goes, so
                    // LimitExceeded fires from inside worker threads. Each
                    // worker checks one scratch buffer out of the query-wide
                    // freelist for its whole run — rejected rows (the common
                    // case on a filtered scan) never pay a heap allocation,
                    // and the buffers carry over to later scans in the query.
                    let stored = table.rows();
                    let conds = &conds;
                    parallel_morsels_scratch(
                        ctx.pool(),
                        stored.len(),
                        &|| ctx.scratch_take(),
                        &|buf| ctx.scratch_put(buf),
                        |range, buf| {
                            let mut out = Vec::new();
                            for r in &stored[range] {
                                r.decompress_into(width, buf);
                                if eval_all(conds, buf)? {
                                    out.push(std::mem::take(buf));
                                }
                            }
                            ctx.charge(out.len())?;
                            Ok(out)
                        },
                    )?
                }
            };
            ctx.phase_add(Phase::Scan, scan_t0);
            Ok(Rel { cols, rows })
        }
        Relation::Subquery(q) => {
            let mut rel = exec_query(q, ctx)?;
            let qual = alias.map(str::to_ascii_lowercase);
            for c in &mut rel.cols {
                c.qualifier = qual.clone();
            }
            // push was computed against an empty scope, so it is empty here.
            Ok(rel)
        }
        Relation::Unnest { .. } => unreachable!("handled in apply_step"),
    }
}

/// Probe `table`'s index on column `ci` once per left row, applying the
/// pushed single-table predicates to each probed row and the full join
/// condition to each combined row. Handles both inner and left-outer joins.
#[allow(clippy::too_many_arguments)]
fn index_nested_loop(
    left: Rel,
    table_name: &str,
    right_cols: Vec<OutCol>,
    key_col: usize,
    left_key: CExpr,
    push: &[&Expr],
    step: &Step<'_>,
    where_conjuncts: &[&Expr],
    ctx: &ExecCtx<'_>,
) -> Result<Rel> {
    let stream = stream_filters(&left, &right_cols, where_conjuncts, ctx)?;
    let table = ctx.db.table(table_name).expect("caller checked");
    let index = table
        .index_on(&table.schema.columns[key_col].name)
        .expect("caller checked index presence");
    let right_scope = Scope::from_cols(&right_cols);
    let mut push_conds: Vec<CExpr> =
        push.iter().map(|e| compile(e, &right_scope, ctx.db)).collect::<Result<_>>()?;
    order_by_cost(&mut push_conds);

    let mut cols = left.cols.clone();
    cols.extend(right_cols.iter().cloned());
    let combined_scope = Scope::from_cols(&cols);
    // The whole ON condition re-checked per combined row (cheap, safe).
    let residual: Vec<CExpr> = step
        .on
        .map(|e| e.conjuncts())
        .unwrap_or_default()
        .iter()
        .map(|e| compile(e, &combined_scope, ctx.db))
        .collect::<Result<_>>()?;

    let width = table.width();
    let probe_t0 = ctx.phase_start();
    let mut rows = Vec::new();
    for l in &left.rows {
        let key = left_key.eval(l)?;
        let rids: &[u32] = if key.is_null() { &[] } else { index.lookup(&key) };
        ctx.charge(rids.len().max(1))?;
        let mut matched = false;
        for &rid in rids {
            let vals = table.rows()[rid as usize].decompress(width);
            if !eval_all(&push_conds, &vals)? {
                continue;
            }
            let mut combined = l.clone();
            combined.extend(vals);
            if !eval_all(&residual, &combined)? {
                continue;
            }
            matched = true;
            if eval_all(&stream, &combined)? {
                rows.push(combined);
            }
        }
        if !matched && step.kind == JoinKind::LeftOuter {
            let mut combined = l.clone();
            combined.extend(std::iter::repeat_with(|| Value::Null).take(width));
            if eval_all(&stream, &combined)? {
                rows.push(combined);
            }
        }
    }
    ctx.phase_add(Phase::Probe, probe_t0);
    Ok(Rel { cols, rows })
}

fn eval_all<R: RowAccess + ?Sized>(conds: &[CExpr], row: &R) -> Result<bool> {
    for c in conds {
        if !c.eval_truthy(row)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Order conjuncts so cheap comparisons short-circuit before expensive ones
/// (function calls, LIKE, CASE). `eval_all` stops at the first rejecting
/// conjunct, so on a selective scan this keeps e.g. a per-row dictionary
/// materialization behind an integer equality that filters most rows out.
/// Stable, so equal-cost conjuncts keep their written order.
fn order_by_cost(conds: &mut [CExpr]) {
    fn is_expensive(e: &CExpr) -> bool {
        match e {
            CExpr::Call { .. } | CExpr::Like { .. } | CExpr::Case { .. } => true,
            CExpr::Col(_) | CExpr::Lit(_) => false,
            CExpr::Binary { left, right, .. } => is_expensive(left) || is_expensive(right),
            CExpr::Unary { expr, .. }
            | CExpr::IsNull { expr, .. }
            | CExpr::Cast { expr, .. } => is_expensive(expr),
            CExpr::InList { expr, list, .. } => {
                is_expensive(expr) || list.iter().any(is_expensive)
            }
        }
    }
    conds.sort_by_key(is_expensive);
}

fn filter_rows(mut rel: Rel, push: &[&Expr], ctx: &ExecCtx<'_>) -> Result<Rel> {
    let scope = Scope::from_cols(&rel.cols);
    let mut conds: Vec<CExpr> =
        push.iter().map(|e| compile(e, &scope, ctx.db)).collect::<Result<_>>()?;
    order_by_cost(&mut conds);
    let scan_t0 = ctx.phase_start();
    let rows = &rel.rows;
    let conds_ref = &conds;
    let keep: Vec<bool> = parallel_morsels(ctx, rows.len(), |range| {
        let mut out = Vec::with_capacity(range.len());
        let mut kept = 0usize;
        for i in range {
            let k = eval_all(conds_ref, &rows[i])?;
            kept += k as usize;
            out.push(k);
        }
        ctx.charge(kept)?;
        Ok(out)
    })?;
    let mut i = 0;
    rel.rows.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
    ctx.phase_add(Phase::Scan, scan_t0);
    Ok(rel)
}

fn unnest(
    cur: Rel,
    tuples: &[Vec<Expr>],
    columns: &[String],
    alias: Option<&str>,
    ctx: &ExecCtx<'_>,
) -> Result<Rel> {
    let scope = Scope::from_cols(&cur.cols);
    let compiled: Vec<Vec<CExpr>> = tuples
        .iter()
        .map(|t| t.iter().map(|e| compile(e, &scope, ctx.db)).collect::<Result<Vec<_>>>())
        .collect::<Result<_>>()?;
    let qual = alias.map(str::to_ascii_lowercase);
    let mut cols = cur.cols.clone();
    for c in columns {
        cols.push(OutCol { qualifier: qual.clone(), name: c.to_ascii_lowercase() });
    }
    let mut rows = Vec::new();
    for row in &cur.rows {
        for tuple in &compiled {
            let mut vals = Vec::with_capacity(tuple.len());
            for e in tuple {
                vals.push(e.eval(row)?);
            }
            if vals[0].is_null() {
                continue;
            }
            let mut new_row = row.clone();
            new_row.extend(vals);
            rows.push(new_row);
        }
    }
    ctx.charge(rows.len())?;
    Ok(Rel { cols, rows })
}

/// Sentinel right-row id marking a left-outer null extension in the
/// late-materialization pair list.
const NULL_EXTENDED: usize = usize::MAX;

// ---------------------------------------------------------------------------
// Partitioned parallel hash-table build
// ---------------------------------------------------------------------------

/// Number of radix partitions for the parallel hash-join build and the
/// partitioned dedupe pass. A fixed power of two, deliberately independent
/// of the pool width: partition contents — and therefore every
/// order-sensitive merge — are identical at every thread count. 32 keeps
/// partitions plentiful enough to load-balance 8 workers while per-morsel
/// scatter buckets stay cache-resident.
const BUILD_PARTITIONS: usize = 32;

/// Partition id = the TOP bits of the key's [`fx_hash_one`] hash. The hash
/// map derives its bucket index from the LOW bits, so the two levels stay
/// independent — a partition's keys still spread over its whole map.
const PARTITION_SHIFT: u32 = u64::BITS - BUILD_PARTITIONS.trailing_zeros();

/// Inputs below this size build a single map on the calling thread: they fit
/// in one morsel, so there is no work to share and the scatter pass would be
/// pure overhead. The cutoff depends only on input size, never thread count.
const PARALLEL_BUILD_MIN: usize = MORSEL_ROWS;

/// A `key → row-ids` multimap split into hash-disjoint partitions so many
/// workers can build it without sharing a map. `parts.len()` is either 1
/// (small-input sequential build) or [`BUILD_PARTITIONS`]; `lookup`
/// recomputes the key's partition from its hash.
/// One partition's `key → ascending row-ids` multimap.
type KeyMap<K> = FxHashMap<K, Vec<u32>>;

struct PartitionedTable<K> {
    parts: Vec<KeyMap<K>>,
}

impl<K: std::hash::Hash + Eq> PartitionedTable<K> {
    #[inline]
    fn lookup(&self, key: &K) -> &[u32] {
        let part = if self.parts.len() == 1 {
            0
        } else {
            (fx_hash_one(key) >> PARTITION_SHIFT) as usize
        };
        self.parts[part].get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Build a `key → row-ids` multimap over `rows`. Rows whose key evaluates to
/// `None` (NULL join keys) are skipped, matching SQL equality semantics.
///
/// Large inputs build in two parallel phases: phase 1 evaluates keys
/// morsel-parallel, scattering `(key, row-id)` pairs into per-morsel
/// partition buckets; phase 2 hands each worker whole partitions to build
/// into maps independently — no shared-map contention, no serial build.
/// Phase 1 buckets come back in morsel order and phase 2 inserts each
/// partition's entries in that order, so every per-key row-id list is
/// ascending — exactly what a sequential one-pass build produces — and probe
/// output stays byte-identical at every thread count.
fn partitioned_build<K>(
    ctx: &ExecCtx<'_>,
    rows: &[Vec<Value>],
    eval_key: &(dyn Fn(&[Value]) -> Result<Option<K>> + Sync),
) -> Result<PartitionedTable<K>>
where
    K: std::hash::Hash + Eq + Clone + Send + Sync,
{
    if rows.len() < PARALLEL_BUILD_MIN || ctx.threads() <= 1 {
        let mut map: FxHashMap<K, Vec<u32>> = FxHashMap::with_capacity_and_hasher(
            rows.len(),
            crate::hash::FxBuildHasher::default(),
        );
        for (i, r) in rows.iter().enumerate() {
            if let Some(k) = eval_key(r)? {
                map.entry(k).or_default().push(i as u32);
            }
        }
        return Ok(PartitionedTable { parts: vec![map] });
    }

    // Phase 1: morsel-parallel key evaluation + scatter. One bucket set per
    // morsel; `parallel_morsels` returns them in morsel order.
    let scattered: Vec<Vec<Vec<(K, u32)>>> = parallel_morsels(ctx, rows.len(), |range| {
        let mut buckets: Vec<Vec<(K, u32)>> =
            (0..BUILD_PARTITIONS).map(|_| Vec::new()).collect();
        for i in range {
            if let Some(k) = eval_key(&rows[i])? {
                let part = (fx_hash_one(&k) >> PARTITION_SHIFT) as usize;
                buckets[part].push((k, i as u32));
            }
        }
        Ok(vec![buckets])
    })?;

    // Phase 2: workers claim whole partitions off a shared counter; no two
    // ever touch the same map.
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<KeyMap<K>>>> =
        Mutex::new((0..BUILD_PARTITIONS).map(|_| None).collect());
    let scattered_ref = &scattered;
    ctx.pool().broadcast(&|_worker| loop {
        let part = next.fetch_add(1, Ordering::Relaxed);
        if part >= BUILD_PARTITIONS {
            break;
        }
        let len: usize = scattered_ref.iter().map(|m| m[part].len()).sum();
        let mut map: FxHashMap<K, Vec<u32>> =
            FxHashMap::with_capacity_and_hasher(len, crate::hash::FxBuildHasher::default());
        for morsel in scattered_ref {
            for (k, rid) in &morsel[part] {
                map.entry(k.clone()).or_default().push(*rid);
            }
        }
        slots.lock().unwrap()[part] = Some(map);
    });
    let parts = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|m| m.expect("every partition claimed and built"))
        .collect();
    Ok(PartitionedTable { parts })
}

/// Hash join with late materialization. The hash table over the right side
/// is built once; left rows are probed morsel-parallel. Residual ON and
/// stream predicates are evaluated on a zero-copy [`SplitRow`] view of each
/// candidate pair, and surviving matches are carried as
/// `(left_row, right_row)` index pairs. Combined rows are materialized (also
/// morsel-parallel) only for pairs that passed every predicate — candidate
/// rows rejected by a predicate are never copied at all.
#[allow(clippy::too_many_arguments)]
fn join(
    left: Rel,
    right: Rel,
    lkeys: Vec<CExpr>,
    rkeys: Vec<CExpr>,
    residual_on: Vec<&Expr>,
    kind: JoinKind,
    stream: &[CExpr],
    ctx: &ExecCtx<'_>,
) -> Result<Rel> {
    let mut cols = left.cols.clone();
    cols.extend(right.cols.iter().cloned());
    let combined_scope = Scope::from_cols(&cols);
    let residual: Vec<CExpr> = residual_on
        .iter()
        .map(|e| compile(e, &combined_scope, ctx.db))
        .collect::<Result<_>>()?;
    let right_width = right.cols.len();
    let null_row: Vec<Value> = vec![Value::Null; right_width];

    // Build phase: hash right rows on their key into a partitioned table
    // (parallel radix build above the size cutoff — see `partitioned_build`).
    // Empty `lkeys` means no equi-condition was found — every right row is a
    // candidate (cross product guarded by an upfront budget charge).
    // Single-column keys — the common case, and after dictionary encoding a
    // bare i64 — are stored as `Value` directly so neither build nor probe
    // heap-allocates a composite key per row.
    enum KeyTable {
        Single(PartitionedTable<Value>),
        Multi(PartitionedTable<Vec<Value>>),
    }
    let cross = lkeys.is_empty();
    let build_t0 = ctx.phase_start();
    let table = if cross {
        ctx.charge(left.rows.len().saturating_mul(right.rows.len().max(1)))?;
        KeyTable::Single(PartitionedTable { parts: vec![FxHashMap::default()] })
    } else if rkeys.len() == 1 {
        let rk = &rkeys[0];
        KeyTable::Single(partitioned_build(ctx, &right.rows, &|r| {
            let v = rk.eval(r)?;
            Ok(if v.is_null() { None } else { Some(v) })
        })?)
    } else {
        let rkeys_ref = &rkeys;
        KeyTable::Multi(partitioned_build(ctx, &right.rows, &|r| {
            let mut key = Vec::with_capacity(rkeys_ref.len());
            for k in rkeys_ref {
                let v = k.eval(r)?;
                if v.is_null() {
                    return Ok(None);
                }
                key.push(v);
            }
            Ok(Some(key))
        })?)
    };
    ctx.phase_add(Phase::Build, build_t0);

    // Probe phase: morsel-parallel over left rows; output is `(l, r)` index
    // pairs in left-row order, so the final row order matches a sequential
    // left-to-right probe exactly.
    let probe_t0 = ctx.phase_start();
    let all_right: Vec<u32> =
        if cross { (0..right.rows.len() as u32).collect() } else { Vec::new() };
    let (left_rows, right_rows) = (&left.rows, &right.rows);
    let (table_ref, lkeys_ref, residual_ref) = (&table, &lkeys, &residual);
    let (null_ref, all_right_ref) = (&null_row, &all_right);
    let pairs: Vec<(usize, usize)> = parallel_morsels(ctx, left_rows.len(), |range| {
        let mut out = Vec::new();
        let mut key = Vec::with_capacity(lkeys_ref.len());
        for li in range {
            let l = &left_rows[li];
            let matches: &[u32] = if cross {
                all_right_ref
            } else {
                match table_ref {
                    KeyTable::Single(t) => {
                        let v = lkeys_ref[0].eval(l)?;
                        if v.is_null() {
                            &[]
                        } else {
                            t.lookup(&v)
                        }
                    }
                    KeyTable::Multi(t) => {
                        key.clear();
                        let mut null_key = false;
                        for k in lkeys_ref {
                            let v = k.eval(l)?;
                            if v.is_null() {
                                null_key = true;
                                break;
                            }
                            key.push(v);
                        }
                        if null_key {
                            &[]
                        } else {
                            t.lookup(&key)
                        }
                    }
                }
            };
            let mut matched = false;
            for &ri in matches {
                let ri = ri as usize;
                let pair = SplitRow { left: l, right: &right_rows[ri] };
                if !eval_all(residual_ref, &pair)? {
                    continue;
                }
                matched = true;
                if eval_all(stream, &pair)? {
                    out.push((li, ri));
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                let pair = SplitRow { left: l, right: null_ref };
                if eval_all(stream, &pair)? {
                    out.push((li, NULL_EXTENDED));
                }
            }
            if !cross {
                ctx.charge(matches.len().max(1))?;
            }
        }
        Ok(out)
    })?;

    // Materialization phase: copy out only the surviving pairs.
    let pairs_ref = &pairs;
    let rows: Vec<Vec<Value>> = parallel_morsels(ctx, pairs.len(), |range| {
        let mut out = Vec::with_capacity(range.len());
        for &(li, ri) in &pairs_ref[range] {
            let mut combined =
                Vec::with_capacity(left_rows[li].len() + right_width);
            combined.extend(left_rows[li].iter().cloned());
            let r = if ri == NULL_EXTENDED { null_ref } else { &right_rows[ri] };
            combined.extend(r.iter().cloned());
            out.push(combined);
        }
        Ok(out)
    })?;
    ctx.phase_add(Phase::Probe, probe_t0);
    Ok(Rel { cols, rows })
}

fn project(items: &[SelectItem], rel: Rel, ctx: &ExecCtx<'_>) -> Result<Rel> {
    let scope = Scope::from_cols(&rel.cols);
    let mut out_cols: Vec<OutCol> = Vec::new();
    let mut exprs: Vec<CExpr> = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for (i, c) in rel.cols.iter().enumerate() {
                    out_cols.push(OutCol { qualifier: None, name: c.name.clone() });
                    exprs.push(CExpr::Col(i));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let qq = q.to_ascii_lowercase();
                let mut any = false;
                for (i, c) in rel.cols.iter().enumerate() {
                    if c.qualifier.as_deref() == Some(qq.as_str()) {
                        out_cols.push(OutCol { qualifier: None, name: c.name.clone() });
                        exprs.push(CExpr::Col(i));
                        any = true;
                    }
                }
                if !any {
                    return plan_err(format!("unknown qualifier {q:?} in wildcard"));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    _ => format!("col{}", out_cols.len() + 1),
                });
                out_cols.push(OutCol { qualifier: None, name: name.to_ascii_lowercase() });
                exprs.push(compile(expr, &scope, ctx.db)?);
            }
        }
    }
    // Morsel-parallel expression projection; morsel-order concatenation
    // keeps output rows aligned with input order.
    let in_rows = &rel.rows;
    let exprs_ref = &exprs;
    let rows: Vec<Vec<Value>> = parallel_morsels(ctx, in_rows.len(), |range| {
        let mut out = Vec::with_capacity(range.len());
        for i in range {
            let row = &in_rows[i];
            let mut vals = Vec::with_capacity(exprs_ref.len());
            for e in exprs_ref {
                vals.push(e.eval(row)?);
            }
            out.push(vals);
        }
        Ok(out)
    })?;
    Ok(Rel { cols: out_cols, rows })
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

fn select_has_aggregates(sel: &Select) -> bool {
    fn expr_has(e: &Expr) -> bool {
        match e {
            // An aggregate may hide inside a scalar call: COALESCE(SUM(x), 0).
            Expr::Func { name, star, args, .. } => {
                *star || is_aggregate(name) || args.iter().any(expr_has)
            }
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => expr_has(left) || expr_has(right),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr_has(expr)
            }
            Expr::InList { expr, list, .. } => expr_has(expr) || list.iter().any(expr_has),
            Expr::Like { expr, pattern, .. } => expr_has(expr) || expr_has(pattern),
            Expr::Case { branches, else_expr } => {
                branches.iter().any(|(c, v)| expr_has(c) || expr_has(v))
                    || else_expr.as_deref().is_some_and(expr_has)
            }
        }
    }
    sel.projection.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr_has(expr),
        _ => false,
    }) || sel.having.as_ref().is_some_and(expr_has)
}

/// Hash aggregation. Supports projections/HAVING built from GROUP BY
/// expressions and aggregate calls.
fn aggregate(sel: &Select, input: Rel, ctx: &ExecCtx<'_>) -> Result<Rel> {
    let in_scope = Scope::from_cols(&input.cols);

    // Collect the distinct aggregate calls appearing anywhere.
    let mut agg_calls: Vec<Expr> = Vec::new();
    let mut collect = |e: &Expr| {
        for a in find_aggregates(e) {
            if !agg_calls.contains(&a) {
                agg_calls.push(a);
            }
        }
    };
    for item in &sel.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect(expr);
        }
    }
    if let Some(h) = &sel.having {
        collect(h);
    }

    let group_exprs: Vec<CExpr> =
        sel.group_by.iter().map(|e| compile(e, &in_scope, ctx.db)).collect::<Result<_>>()?;
    // Aggregate argument expressions (None for COUNT(*)).
    let agg_args: Vec<Option<CExpr>> = agg_calls
        .iter()
        .map(|a| match a {
            Expr::Func { star: true, .. } => Ok(None),
            Expr::Func { args, .. } => Ok(Some(compile(&args[0], &in_scope, ctx.db)?)),
            _ => unreachable!(),
        })
        .collect::<Result<_>>()?;

    #[derive(Clone)]
    struct AggState {
        count: u64,
        sum: f64,
        sum_is_int: bool,
        sum_int: i64,
        min: Option<Value>,
        max: Option<Value>,
        /// `AGG(DISTINCT x)`: values in first-occurrence order. Accumulation
        /// is deferred to [`AggState::plain`] so merging morsel partials can
        /// dedup globally; first-occurrence order is a pure function of the
        /// input, keeping results byte-identical at every thread count.
        distinct: Option<(FxHashSet<Value>, Vec<Value>)>,
    }
    impl AggState {
        fn new(distinct: bool) -> Self {
            AggState {
                count: 0,
                sum: 0.0,
                sum_is_int: true,
                sum_int: 0,
                min: None,
                max: None,
                distinct: distinct.then(|| (FxHashSet::default(), Vec::new())),
            }
        }

        /// Resolve a deferred DISTINCT accumulation into a plain state.
        fn plain(&self) -> AggState {
            match &self.distinct {
                None => self.clone(),
                Some((_, order)) => {
                    let mut s = AggState::new(false);
                    for v in order {
                        s.update(v);
                    }
                    s
                }
            }
        }

        fn update(&mut self, v: &Value) {
            if v.is_null() {
                return;
            }
            if let Some((seen, order)) = &mut self.distinct {
                if seen.insert(v.clone()) {
                    order.push(v.clone());
                }
                return;
            }
            self.count += 1;
            match v {
                Value::Int(i) => {
                    self.sum += *i as f64;
                    self.sum_int = self.sum_int.wrapping_add(*i);
                }
                Value::Double(d) => {
                    self.sum += d;
                    self.sum_is_int = false;
                }
                _ => self.sum_is_int = false,
            }
            if self.min.as_ref().map(|m| replaces(v, m, true)).unwrap_or(true) {
                self.min = Some(v.clone());
            }
            if self.max.as_ref().map(|m| replaces(v, m, false)).unwrap_or(true) {
                self.max = Some(v.clone());
            }
        }

        /// Fold `other` (a later morsel's partial) into `self`. On min/max
        /// ties the earlier occurrence is kept unless the type tie-break in
        /// [`replaces`] applies, matching what a sequential pass would retain.
        fn merge(&mut self, other: &AggState) {
            if let Some((seen, order)) = &mut self.distinct {
                if let Some((_, oorder)) = &other.distinct {
                    for v in oorder {
                        if seen.insert(v.clone()) {
                            order.push(v.clone());
                        }
                    }
                }
                return;
            }
            self.count += other.count;
            self.sum += other.sum;
            self.sum_is_int &= other.sum_is_int;
            self.sum_int = self.sum_int.wrapping_add(other.sum_int);
            if let Some(m) = &other.min {
                if self.min.as_ref().map(|c| replaces(m, c, true)).unwrap_or(true) {
                    self.min = Some(m.clone());
                }
            }
            if let Some(m) = &other.max {
                if self.max.as_ref().map(|c| replaces(m, c, false)).unwrap_or(true) {
                    self.max = Some(m.clone());
                }
            }
        }
    }

    /// Should candidate `v` replace the current MIN (`want_less`) or MAX
    /// representative `m`? On a `total_cmp` tie — only possible for an Int
    /// and a Double of equal value, e.g. `1` vs `1.0` — prefer the Int so
    /// the retained representative is a function of the value multiset, not
    /// of the order rows reach the aggregate.
    fn replaces(v: &Value, m: &Value, want_less: bool) -> bool {
        use std::cmp::Ordering;
        match v.total_cmp(m) {
            Ordering::Equal => {
                matches!(v, Value::Int(_)) && matches!(m, Value::Double(_))
            }
            Ordering::Less => want_less,
            Ordering::Greater => !want_less,
        }
    }

    // Accumulation runs as per-MORSEL partial aggregates (morsel-parallel),
    // merged below in morsel order. Because morsel boundaries are fixed by
    // MORSEL_ROWS alone, both the float summation order and the
    // first-occurrence group order are pure functions of the input — results
    // are byte-identical at every thread count.
    let agg_t0 = ctx.phase_start();
    type Partial = Vec<(Vec<Value>, Vec<AggState>)>;
    let (group_ref, arg_ref) = (&group_exprs, &agg_args);
    let in_rows = &input.rows;
    let agg_distinct: Vec<bool> = agg_calls
        .iter()
        .map(|a| matches!(a, Expr::Func { distinct: true, .. }))
        .collect();
    let dist_ref = &agg_distinct;
    let fresh_states =
        move || dist_ref.iter().map(|d| AggState::new(*d)).collect::<Vec<_>>();
    let partials: Vec<Partial> = parallel_morsels(ctx, in_rows.len(), |range| {
        let mut idx: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
        let mut local: Partial = Vec::new();
        for row in &in_rows[range] {
            let key: Vec<Value> =
                group_ref.iter().map(|e| e.eval(row)).collect::<Result<_>>()?;
            // Entry API so the common already-seen-group path moves the key
            // in without cloning it; only a fresh group pays a clone.
            let slot = match idx.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    local.push((e.key().clone(), fresh_states()));
                    *e.insert(local.len() - 1)
                }
            };
            let states = &mut local[slot].1;
            for (i, arg) in arg_ref.iter().enumerate() {
                match arg {
                    None => states[i].count += 1, // COUNT(*)
                    Some(e) => {
                        let v = e.eval(row)?;
                        states[i].update(&v);
                    }
                }
            }
        }
        Ok(vec![local])
    })?;

    // Merge partials in morsel order; group order is first occurrence.
    let mut groups: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    let mut merged: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
    for partial in partials {
        for (key, states) in partial {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let dst = &mut merged[*e.get()].1;
                    for (d, s) in dst.iter_mut().zip(&states) {
                        d.merge(s);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let key = e.key().clone();
                    e.insert(merged.len());
                    merged.push((key, states));
                }
            }
        }
    }
    // Global aggregate over an empty input still yields one row.
    if sel.group_by.is_empty() && merged.is_empty() {
        merged.push((Vec::new(), fresh_states()));
    }

    // Build the intermediate scope: group-by exprs then aggregate values.
    let mut mid_cols: Vec<OutCol> = Vec::new();
    for (i, e) in sel.group_by.iter().enumerate() {
        let name = match e {
            Expr::Column { name, .. } => name.clone(),
            _ => format!("_g{i}"),
        };
        mid_cols.push(OutCol { qualifier: None, name: name.to_ascii_lowercase() });
    }
    for i in 0..agg_calls.len() {
        mid_cols.push(OutCol { qualifier: None, name: format!("_agg{i}") });
    }

    let mut mid_rows: Vec<Vec<Value>> = Vec::with_capacity(merged.len());
    for (key, states) in merged {
        let mut row = key;
        for (i, call) in agg_calls.iter().enumerate() {
            let s = states[i].plain();
            let Expr::Func { name, .. } = call else { unreachable!() };
            let v = match name.as_str() {
                "count" => Value::Int(s.count as i64),
                "sum" => {
                    if s.count == 0 {
                        Value::Null
                    } else if s.sum_is_int {
                        Value::Int(s.sum_int)
                    } else {
                        Value::Double(s.sum)
                    }
                }
                "avg" => {
                    if s.count == 0 {
                        Value::Null
                    } else {
                        Value::Double(s.sum / s.count as f64)
                    }
                }
                "min" => s.min.clone().unwrap_or(Value::Null),
                "max" => s.max.clone().unwrap_or(Value::Null),
                _ => unreachable!(),
            };
            row.push(v);
        }
        mid_rows.push(row);
    }
    ctx.charge(mid_rows.len())?;

    // Rewrite projection/having over the intermediate scope.
    let rewrite = |e: &Expr| -> Expr {
        rewrite_agg(e, &sel.group_by, &agg_calls)
    };
    let mid = Rel { cols: mid_cols, rows: mid_rows };
    let mid_scope = Scope::from_cols(&mid.cols);

    let mut rel = mid;
    if let Some(h) = &sel.having {
        let cond = compile(&rewrite(h), &mid_scope, ctx.db)?;
        let mut kept = Vec::new();
        for row in rel.rows {
            if cond.eval_truthy(&row)? {
                kept.push(row);
            }
        }
        rel.rows = kept;
    }

    let items: Vec<SelectItem> = sel
        .projection
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().or_else(|| match expr {
                    Expr::Column { name, .. } => Some(name.clone()),
                    Expr::Func { name, .. } => Some(name.clone()),
                    _ => None,
                });
                Ok(SelectItem::Expr { expr: rewrite(expr), alias: name })
            }
            _ => plan_err("wildcard projection is not supported with GROUP BY"),
        })
        .collect::<Result<_>>()?;
    ctx.phase_add(Phase::Agg, agg_t0);
    project(&items, rel, ctx)
}

fn find_aggregates(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Func { name, star, .. } if *star || is_aggregate(name) => out.push(e.clone()),
            Expr::Func { args, .. } => args.iter().for_each(|a| walk(a, out)),
            Expr::Binary { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                walk(expr, out)
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, out);
                list.iter().for_each(|a| walk(a, out));
            }
            Expr::Like { expr, pattern, .. } => {
                walk(expr, out);
                walk(pattern, out);
            }
            Expr::Case { branches, else_expr } => {
                for (c, v) in branches {
                    walk(c, out);
                    walk(v, out);
                }
                if let Some(x) = else_expr {
                    walk(x, out);
                }
            }
            Expr::Column { .. } | Expr::Literal(_) => {}
        }
    }
    walk(e, &mut out);
    out
}

/// Replace group-by expressions and aggregate calls with references into the
/// intermediate aggregation scope.
fn rewrite_agg(e: &Expr, group_by: &[Expr], agg_calls: &[Expr]) -> Expr {
    if let Some(i) = agg_calls.iter().position(|a| a == e) {
        return Expr::col(&format!("_agg{i}"));
    }
    if let Some(i) = group_by.iter().position(|g| g == e) {
        return match &group_by[i] {
            Expr::Column { name, .. } => Expr::col(name),
            _ => Expr::col(&format!("_g{i}")),
        };
    }
    match e {
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_agg(left, group_by, agg_calls)),
            right: Box::new(rewrite_agg(right, group_by, agg_calls)),
        },
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(rewrite_agg(expr, group_by, agg_calls)) }
        }
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_agg(expr, group_by, agg_calls)),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_agg(expr, group_by, agg_calls)),
            list: list.iter().map(|x| rewrite_agg(x, group_by, agg_calls)).collect(),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(rewrite_agg(expr, group_by, agg_calls)),
            pattern: Box::new(rewrite_agg(pattern, group_by, agg_calls)),
            negated: *negated,
        },
        Expr::Case { branches, else_expr } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| {
                    (rewrite_agg(c, group_by, agg_calls), rewrite_agg(v, group_by, agg_calls))
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|x| Box::new(rewrite_agg(x, group_by, agg_calls))),
        },
        Expr::Cast { expr, ty } => {
            Expr::Cast { expr: Box::new(rewrite_agg(expr, group_by, agg_calls)), ty: *ty }
        }
        Expr::Func { name, args, star, distinct } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|x| rewrite_agg(x, group_by, agg_calls)).collect(),
            star: *star,
            distinct: *distinct,
        },
        _ => e.clone(),
    }
}
