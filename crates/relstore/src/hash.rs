//! A fast, non-cryptographic hasher for executor-internal hash tables.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is DoS-hardened
//! but byte-at-a-time slow; join builds, duplicate elimination and grouping
//! hash millions of short keys (after dictionary encoding, mostly single
//! `i64`s) where that hardening buys nothing — the inputs are the engine's
//! own rows, not attacker-controlled map keys living across requests. This is
//! the FxHash construction used by rustc: fold 8-byte words with
//! `rotate-xor-multiply` against a 64-bit odd constant derived from the
//! golden ratio. In-repo because the workspace builds fully offline.

use std::hash::{BuildHasherDefault, Hasher};

/// `floor(2^64 / φ)`, forced odd — the multiplier rustc's FxHash uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher. Not DoS-resistant by design; use only for
/// process-internal tables over trusted keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The word mixer's multiply only propagates entropy upward, and the
        // map picks the bucket from the LOW bits of the hash. Inputs whose
        // entropy sits in high bits — notably `(small_int as f64).to_bits()`,
        // which is how `Value` hashes dictionary IDs so `1` and `1.0` agree
        // (low 40+ mantissa bits all zero) — would otherwise collide into
        // one bucket chain. Finish with a full-avalanche finalizer
        // (murmur3's fmix64) so every input bit reaches the bucket bits.
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" ≠ "ab\0".
            word[7] = rest.len() as u8;
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// Hash one value through [`FxHasher`] — the exact hash an [`FxHashMap`]
/// would compute for it. The executor's partitioned operators use this to
/// radix-partition rows by key hash so every partition's table can be built
/// by a different worker without contention.
pub fn fx_hash_one<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// `BuildHasher` for `HashMap::with_capacity_and_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinguishes_values() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn long_keys_use_all_bytes() {
        let a: Vec<u8> = (0..64).collect();
        let mut b = a.clone();
        b[63] ^= 1;
        assert_ne!(hash_of(&a), hash_of(&b));
        b[63] ^= 1;
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn dense_float_encoded_ints_spread_across_low_bits() {
        // `Value::Int(k)` hashes `(k as f64).to_bits()`, whose low ~35 bits
        // are zero for small k. Bucket selection uses the low hash bits, so
        // they must still differ across a dense ID range.
        let mut low: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for k in 1..=4096i64 {
            low.insert(hash_of(&(k as f64).to_bits()) & 0x7f);
        }
        assert_eq!(low.len(), 128, "dense IDs must reach every low-bit bucket");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Vec<crate::Value>, usize> = FxHashMap::default();
        m.insert(vec![crate::Value::Int(7), crate::Value::str("x")], 1);
        assert_eq!(m.get(&vec![crate::Value::Int(7), crate::Value::str("x")]), Some(&1));
        assert_eq!(m.get(&vec![crate::Value::Int(8), crate::Value::str("x")]), None);
    }
}
