//! The durable file layer, with fault-injection hooks.
//!
//! All WAL and snapshot bytes flow through [`FaultFile`], a thin wrapper
//! over `std::fs::File` that consults an [`IoFault`] before every write and
//! every fsync. The production injector ([`NoFaults`]) is a no-op; the
//! crash-recovery test suite installs scripted injectors that cut writes
//! short, fail them outright, or make fsync report an error — exercising
//! exactly the failure surface a real disk exposes, deterministically.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// What the fault layer lets a single write do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Write all bytes.
    Full,
    /// Write only the first `n` bytes, then report failure (a torn write).
    Short(usize),
    /// Write nothing and report failure.
    Fail,
}

/// Fault hooks consulted by [`FaultFile`]. Implementations must be cheap and
/// deterministic; they are shared across the database and its files.
pub trait IoFault: Send + Sync {
    /// Decide the fate of a write of `len` bytes at byte `offset`.
    fn on_write(&self, offset: u64, len: usize) -> WriteOutcome {
        let _ = (offset, len);
        WriteOutcome::Full
    }

    /// Decide whether an fsync succeeds. `Err` simulates a failed fsync.
    fn on_sync(&self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The production injector: every operation succeeds.
pub struct NoFaults;

impl IoFault for NoFaults {}

/// A shared fault injector handle.
pub type FaultHandle = Arc<dyn IoFault>;

pub fn no_faults() -> FaultHandle {
    Arc::new(NoFaults)
}

/// An append-oriented file that routes writes and fsyncs through an
/// [`IoFault`]. Tracks the logical end offset so callers can truncate back
/// to the last known-good frame boundary after a torn write.
pub struct FaultFile {
    file: File,
    offset: u64,
    faults: FaultHandle,
}

impl FaultFile {
    /// Open (or create) `path` for appending, positioned at `offset` — the
    /// validated logical length. Bytes past `offset` are discarded.
    pub fn open_append(
        path: &Path,
        offset: u64,
        faults: FaultHandle,
    ) -> std::io::Result<FaultFile> {
        let file =
            File::options().read(true).write(true).create(true).truncate(false).open(path)?;
        file.set_len(offset)?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::Start(offset))?;
        Ok(FaultFile { file, offset, faults })
    }

    /// Logical end offset (bytes durably accepted so far).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Append `bytes`, consulting the fault injector. On a short or failed
    /// write the file is truncated back to the pre-write offset (best
    /// effort) and an error is returned; the logical offset never moves past
    /// a partial write.
    pub fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self.faults.on_write(self.offset, bytes.len()) {
            WriteOutcome::Full => {
                self.file.write_all(bytes)?;
                self.offset += bytes.len() as u64;
                Ok(())
            }
            WriteOutcome::Short(n) => {
                let n = n.min(bytes.len());
                // The torn prefix reaches the platter: this is the state a
                // crash mid-write leaves behind, and what recovery must cope
                // with if the rollback below also fails.
                let _ = self.file.write_all(&bytes[..n]);
                let _ = self.file.sync_data();
                self.rollback();
                Err(std::io::Error::other(format!(
                    "injected short write: {n} of {} bytes",
                    bytes.len()
                )))
            }
            WriteOutcome::Fail => {
                self.rollback();
                Err(std::io::Error::other("injected write failure"))
            }
        }
    }

    /// fsync through the fault injector.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.faults.on_sync()?;
        self.file.sync_data()
    }

    /// Best-effort truncation back to the logical offset after a failed
    /// append, so a later writer does not append after torn bytes.
    fn rollback(&mut self) {
        let _ = self.file.set_len(self.offset);
        use std::io::Seek;
        let _ = self.file.seek(std::io::SeekFrom::Start(self.offset));
    }

    /// Roll the file back to `offset` (best effort), discarding bytes whose
    /// durability is unknown — e.g. a frame whose fsync failed. The logical
    /// offset moves back too, so the next append lands at `offset`.
    pub fn truncate_to(&mut self, offset: u64) {
        self.offset = offset.min(self.offset);
        self.rollback();
    }
}

/// Write `bytes` to `path` atomically: write a `.tmp` sibling through the
/// fault layer, fsync it, then rename over the target. Either the old file
/// or the complete new file survives a crash; a torn `.tmp` is ignored by
/// recovery.
pub fn atomic_write(path: &Path, bytes: &[u8], faults: &FaultHandle) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = FaultFile::open_append(&tmp, 0, faults.clone())?;
        f.append(bytes)?;
        f.sync()?;
    }
    std::fs::rename(&tmp, path)?;
    // Durably record the rename itself (directory metadata). Failure here is
    // not fatal: the data file is already synced.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("relstore-io-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("f")
    }

    struct ShortOnNth {
        n: AtomicUsize,
        keep: usize,
    }

    impl IoFault for ShortOnNth {
        fn on_write(&self, _offset: u64, _len: usize) -> WriteOutcome {
            if self.n.fetch_sub(1, Ordering::SeqCst) == 1 {
                WriteOutcome::Short(self.keep)
            } else {
                WriteOutcome::Full
            }
        }
    }

    #[test]
    fn append_tracks_offset_and_rolls_back_short_writes() {
        let path = tmp_path("short");
        let faults: FaultHandle = Arc::new(ShortOnNth { n: AtomicUsize::new(2), keep: 3 });
        let mut f = FaultFile::open_append(&path, 0, faults).unwrap();
        f.append(b"hello").unwrap();
        assert_eq!(f.offset(), 5);
        assert!(f.append(b"world").is_err());
        assert_eq!(f.offset(), 5, "offset must not advance past a torn write");
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let path = tmp_path("atomic");
        atomic_write(&path, b"one", &no_faults()).unwrap();
        atomic_write(&path, b"two!", &no_faults()).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two!");
        assert!(!path.with_extension("tmp").exists());
    }
}
