//! The durable file layer, with fault-injection hooks.
//!
//! All WAL and snapshot bytes flow through [`FaultFile`], a thin wrapper
//! over `std::fs::File` that consults an [`IoFault`] before every write and
//! every fsync. The production injector ([`NoFaults`]) is a no-op; the
//! crash-recovery test suite installs scripted injectors that cut writes
//! short, fail them outright, or make fsync report an error — exercising
//! exactly the failure surface a real disk exposes, deterministically.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// What the fault layer lets a single write do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Write all bytes.
    Full,
    /// Write only the first `n` bytes, then report failure (a torn write).
    Short(usize),
    /// Write nothing and report failure.
    Fail,
}

/// What the fault layer lets a whole-file recovery read observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Return every byte on disk.
    Full,
    /// Return only the first `n` bytes — the readable prefix of a file whose
    /// tail sits on a bad sector. Recovery must treat the result like a file
    /// that really is that short (torn tail, CRC mismatch, …).
    Short(usize),
    /// Fail the read outright (unreadable file / EIO).
    Fail,
}

/// Fault hooks consulted by [`FaultFile`] and [`read_file`]. Implementations
/// must be cheap and deterministic; they are shared across the database and
/// its files.
pub trait IoFault: Send + Sync {
    /// Decide the fate of a write of `len` bytes at byte `offset`.
    fn on_write(&self, offset: u64, len: usize) -> WriteOutcome {
        let _ = (offset, len);
        WriteOutcome::Full
    }

    /// Decide whether an fsync succeeds. `Err` simulates a failed fsync.
    fn on_sync(&self) -> std::io::Result<()> {
        Ok(())
    }

    /// Decide the fate of a whole-file read of `len` bytes from `path`.
    /// Consulted by recovery ([`read_file`]) for WAL and snapshot loads.
    fn on_read(&self, path: &Path, len: usize) -> ReadOutcome {
        let _ = (path, len);
        ReadOutcome::Full
    }
}

/// The production injector: every operation succeeds.
pub struct NoFaults;

impl IoFault for NoFaults {}

/// A shared fault injector handle.
pub type FaultHandle = Arc<dyn IoFault>;

pub fn no_faults() -> FaultHandle {
    Arc::new(NoFaults)
}

/// Read the whole file at `path` through the fault layer. A `Short` outcome
/// returns the readable prefix (as if the file really ended there); `Fail`
/// surfaces an I/O error. A missing file propagates `NotFound` untouched —
/// absence is a legitimate state, not a fault.
pub fn read_file(path: &Path, faults: &FaultHandle) -> std::io::Result<Vec<u8>> {
    let mut bytes = std::fs::read(path)?;
    match faults.on_read(path, bytes.len()) {
        ReadOutcome::Full => Ok(bytes),
        ReadOutcome::Short(n) => {
            bytes.truncate(n);
            Ok(bytes)
        }
        ReadOutcome::Fail => {
            Err(std::io::Error::other(format!("injected read failure: {}", path.display())))
        }
    }
}

/// A deterministic scripted injector for crash-point fuzzing: fail or cut
/// short the Nth write, read, or sync (0-based, counted per category across
/// the injector's lifetime). All triggers are optional; an untriggered
/// category behaves like [`NoFaults`]. The same handle can be threaded
/// through a whole `Database` lifetime, so "the 7th write this process ever
/// does" is a reproducible crash point.
#[derive(Default)]
pub struct ScriptedFaults {
    writes: AtomicUsize,
    reads: AtomicUsize,
    write_plan: Option<(usize, WriteOutcome)>,
    read_plan: Option<(usize, ReadOutcome)>,
    sync_fail_at: Option<usize>,
    syncs: AtomicUsize,
}

impl ScriptedFaults {
    pub fn new() -> ScriptedFaults {
        ScriptedFaults::default()
    }

    /// Fail the `n`th write outright.
    pub fn fail_write(mut self, n: usize) -> Self {
        self.write_plan = Some((n, WriteOutcome::Fail));
        self
    }

    /// Cut the `n`th write short, keeping only `keep` bytes.
    pub fn short_write(mut self, n: usize, keep: usize) -> Self {
        self.write_plan = Some((n, WriteOutcome::Short(keep)));
        self
    }

    /// Fail the `n`th whole-file read outright.
    pub fn fail_read(mut self, n: usize) -> Self {
        self.read_plan = Some((n, ReadOutcome::Fail));
        self
    }

    /// Cut the `n`th whole-file read short, keeping only `keep` bytes.
    pub fn short_read(mut self, n: usize, keep: usize) -> Self {
        self.read_plan = Some((n, ReadOutcome::Short(keep)));
        self
    }

    /// Fail the `n`th fsync.
    pub fn fail_sync(mut self, n: usize) -> Self {
        self.sync_fail_at = Some(n);
        self
    }

    /// Wrap into the shared handle the database APIs take.
    pub fn into_handle(self) -> FaultHandle {
        Arc::new(self)
    }
}

impl IoFault for ScriptedFaults {
    fn on_write(&self, _offset: u64, _len: usize) -> WriteOutcome {
        let i = self.writes.fetch_add(1, Ordering::SeqCst);
        match self.write_plan {
            Some((n, outcome)) if n == i => outcome,
            _ => WriteOutcome::Full,
        }
    }

    fn on_sync(&self) -> std::io::Result<()> {
        let i = self.syncs.fetch_add(1, Ordering::SeqCst);
        if self.sync_fail_at == Some(i) {
            return Err(std::io::Error::other("injected fsync failure"));
        }
        Ok(())
    }

    fn on_read(&self, path: &Path, _len: usize) -> ReadOutcome {
        let i = self.reads.fetch_add(1, Ordering::SeqCst);
        match self.read_plan {
            Some((n, outcome)) if n == i => outcome,
            _ => {
                let _ = path;
                ReadOutcome::Full
            }
        }
    }
}

/// An append-oriented file that routes writes and fsyncs through an
/// [`IoFault`]. Tracks the logical end offset so callers can truncate back
/// to the last known-good frame boundary after a torn write.
pub struct FaultFile {
    file: File,
    offset: u64,
    faults: FaultHandle,
}

impl FaultFile {
    /// Open (or create) `path` for appending, positioned at `offset` — the
    /// validated logical length. Bytes past `offset` are discarded.
    pub fn open_append(
        path: &Path,
        offset: u64,
        faults: FaultHandle,
    ) -> std::io::Result<FaultFile> {
        let file =
            File::options().read(true).write(true).create(true).truncate(false).open(path)?;
        file.set_len(offset)?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::Start(offset))?;
        Ok(FaultFile { file, offset, faults })
    }

    /// Logical end offset (bytes durably accepted so far).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Append `bytes`, consulting the fault injector. On a short or failed
    /// write the file is truncated back to the pre-write offset (best
    /// effort) and an error is returned; the logical offset never moves past
    /// a partial write.
    pub fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self.faults.on_write(self.offset, bytes.len()) {
            WriteOutcome::Full => {
                self.file.write_all(bytes)?;
                self.offset += bytes.len() as u64;
                Ok(())
            }
            WriteOutcome::Short(n) => {
                let n = n.min(bytes.len());
                // The torn prefix reaches the platter: this is the state a
                // crash mid-write leaves behind, and what recovery must cope
                // with if the rollback below also fails.
                let _ = self.file.write_all(&bytes[..n]);
                let _ = self.file.sync_data();
                self.rollback();
                Err(std::io::Error::other(format!(
                    "injected short write: {n} of {} bytes",
                    bytes.len()
                )))
            }
            WriteOutcome::Fail => {
                self.rollback();
                Err(std::io::Error::other("injected write failure"))
            }
        }
    }

    /// fsync through the fault injector.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.faults.on_sync()?;
        self.file.sync_data()
    }

    /// Best-effort truncation back to the logical offset after a failed
    /// append, so a later writer does not append after torn bytes.
    fn rollback(&mut self) {
        let _ = self.file.set_len(self.offset);
        use std::io::Seek;
        let _ = self.file.seek(std::io::SeekFrom::Start(self.offset));
    }

    /// Roll the file back to `offset` (best effort), discarding bytes whose
    /// durability is unknown — e.g. a frame whose fsync failed. The logical
    /// offset moves back too, so the next append lands at `offset`.
    pub fn truncate_to(&mut self, offset: u64) {
        self.offset = offset.min(self.offset);
        self.rollback();
    }
}

/// Write `bytes` to `path` atomically: write a `.tmp` sibling through the
/// fault layer, fsync it, then rename over the target. Either the old file
/// or the complete new file survives a crash; a torn `.tmp` is ignored by
/// recovery.
pub fn atomic_write(path: &Path, bytes: &[u8], faults: &FaultHandle) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = FaultFile::open_append(&tmp, 0, faults.clone())?;
        f.append(bytes)?;
        f.sync()?;
    }
    std::fs::rename(&tmp, path)?;
    // Durably record the rename itself (directory metadata). Failure here is
    // not fatal: the data file is already synced.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("relstore-io-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("f")
    }

    struct ShortOnNth {
        n: AtomicUsize,
        keep: usize,
    }

    impl IoFault for ShortOnNth {
        fn on_write(&self, _offset: u64, _len: usize) -> WriteOutcome {
            if self.n.fetch_sub(1, Ordering::SeqCst) == 1 {
                WriteOutcome::Short(self.keep)
            } else {
                WriteOutcome::Full
            }
        }
    }

    #[test]
    fn append_tracks_offset_and_rolls_back_short_writes() {
        let path = tmp_path("short");
        let faults: FaultHandle = Arc::new(ShortOnNth { n: AtomicUsize::new(2), keep: 3 });
        let mut f = FaultFile::open_append(&path, 0, faults).unwrap();
        f.append(b"hello").unwrap();
        assert_eq!(f.offset(), 5);
        assert!(f.append(b"world").is_err());
        assert_eq!(f.offset(), 5, "offset must not advance past a torn write");
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let path = tmp_path("atomic");
        atomic_write(&path, b"one", &no_faults()).unwrap();
        atomic_write(&path, b"two!", &no_faults()).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two!");
        assert!(!path.with_extension("tmp").exists());
    }
}
