//! `relstore` — an embedded, in-memory relational database engine.
//!
//! This crate is the substrate standing in for IBM DB2 in the SIGMOD'13
//! DB2RDF architecture: typed tables with null-suppressing ("value
//! compressed") wide rows, hash and B-tree secondary indexes, and a SQL
//! dialect covering the constructs the paper's SPARQL→SQL translation emits —
//! CTEs (`WITH`), inner and left-outer joins, `UNION [ALL]`, `CASE`,
//! `COALESCE`, `IS [NOT] NULL`, `DISTINCT`, `ORDER BY`, `LIMIT`/`OFFSET`,
//! simple aggregates, and a lateral `UNNEST` table function standing in for
//! DB2's `TABLE(...)` value-flip construct (paper Fig. 13).
//!
//! Planning is deliberately minimal (see `exec` module docs): the SPARQL
//! optimizer upstream decides join order; this engine contributes index
//! probes for constant equality on indexed columns and hash joins for
//! equi-joins — what the paper assumes of "the relational query engine".
//!
//! Hot operators (base-table scans, WHERE filtering, projection, hash-join
//! probing, sort-key extraction and duplicate pre-hashing) execute
//! morsel-parallel over a `std::thread::scope` worker pool; results are
//! concatenated in morsel order, so row order is identical at every thread
//! count. The pool width comes from [`Database::set_threads`], the
//! `RELSTORE_THREADS` environment variable, or
//! [`std::thread::available_parallelism`], in that order.
//!
//! [`Database::new`] is purely in-memory; [`Database::open`] binds the
//! database to a directory for crash-safe durability — a CRC32-framed
//! write-ahead log of committed mutations plus binary snapshot checkpoints
//! ([`Database::checkpoint`]). Recovery loads the newest valid snapshot and
//! replays the committed WAL prefix, truncating torn tails; an unwritable
//! WAL degrades the store to read-only instead of failing open. The `io`
//! module exposes the fault-injection hooks the crash-recovery tests use.
//!
//! ```
//! use relstore::{Database, Value};
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE person (name TEXT, age INT)").unwrap();
//! db.execute("INSERT INTO person VALUES ('ada', 36), ('alan', 41)").unwrap();
//! let rel = db.query("SELECT name FROM person WHERE age > 40").unwrap();
//! assert_eq!(rel.rows, vec![vec![Value::str("alan")]]);
//! ```

mod codec;
mod database;
mod error;
mod exec;
pub mod hash;
pub mod io;
pub mod pool;
mod row;
mod snapshot;
pub mod sql;
mod table;
mod value;
pub mod wal;

pub use database::{resolve_threads, table_schema, Database, ExecOutcome, ScalarFn};
pub use error::{Error, Result};
pub use exec::{like_match, OutCol, PhaseTimings, Rel, RowAccess, SplitRow, MORSEL_ROWS};
pub use hash::{fx_hash_one, FxBuildHasher, FxHashMap, FxHasher};
pub use pool::WorkerPool;
pub use io::{no_faults, FaultHandle, IoFault, NoFaults, ReadOutcome, ScriptedFaults, WriteOutcome};
pub use row::CompressedRow;
pub use snapshot::{load_snapshot, write_snapshot, SnapshotTable};
pub use sql::lexer::{quote_str, value_to_sql};
pub use table::{ColumnDef, Index, IndexKind, Table, TableSchema};
pub use value::{SqlType, Value};
pub use wal::{WalOp, WalWriter};
