//! A per-query worker pool for morsel-driven parallel operators.
//!
//! PR 1's executor spawned a fresh `std::thread::scope` for every parallel
//! region — every scan, every join probe, every projection paid thread
//! creation and teardown (tens of microseconds each) on inputs whose whole
//! morsel loop often runs in less. That fixed cost is the single largest
//! reason `BENCH_exec.json` showed parallelism *losing* at 4 threads.
//!
//! [`WorkerPool`] amortizes it: one pool is created per query (threaded
//! through `ExecCtx`), workers are spawned lazily on the first parallel
//! region that actually has enough morsels to share, and every subsequent
//! operator in the same query reuses the parked threads. Workers live until
//! the pool is dropped at the end of the query.
//!
//! The dispatch primitive is [`WorkerPool::broadcast`]: run one closure on
//! every pool thread (the caller participates as worker 0) and return when
//! all of them have finished. Operators layer morsel-stealing on top via a
//! shared atomic counter; the pool itself does no scheduling.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased job: a borrowed closure whose lifetime is upheld manually —
/// `broadcast` does not return until every worker has finished running it,
/// so the borrow can never dangle (see the safety comment there).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared `&`-calls from many threads are
// fine) and `broadcast` keeps it alive for the whole dispatch window.
unsafe impl Send for JobPtr {}

struct PoolState {
    /// Bumped once per broadcast; workers run each epoch exactly once.
    epoch: u64,
    job: Option<JobPtr>,
    /// Workers still running the current epoch's job.
    active: usize,
    /// A worker's job invocation panicked (re-raised on the caller).
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between epochs.
    work_cv: Condvar,
    /// The caller parks here until `active` drains to zero.
    done_cv: Condvar,
}

/// A fixed-width worker pool. `threads` counts the caller too: a pool of
/// width 4 spawns 3 OS threads and the broadcasting thread takes the fourth
/// share. Width ≤ 1 never spawns anything and `broadcast` degenerates to a
/// plain call — sequential execution stays allocation- and syscall-free.
pub struct WorkerPool {
    threads: usize,
    /// Lazily initialized on the first broadcast so short queries that never
    /// hit a multi-morsel operator pay nothing.
    lazy: Mutex<Option<Spawned>>,
}

struct Spawned {
    shared: std::sync::Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool { threads: threads.max(1), lazy: Mutex::new(None) }
    }

    /// Pool width including the calling thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(worker_index)` on every pool thread — indexes `1..threads` on
    /// the spawned workers, `0` on the caller — returning once all calls
    /// have finished. Panics in any invocation are re-raised here after the
    /// other workers drain, so borrowed captures never outlive the call.
    pub fn broadcast(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.threads <= 1 {
            f(0);
            return;
        }
        let shared = {
            let mut lazy = self.lazy.lock().unwrap();
            let spawned = lazy.get_or_insert_with(|| spawn_workers(self.threads - 1));
            spawned.shared.clone()
        };

        // SAFETY: we erase the closure's lifetime to park it in the shared
        // slot. The borrow is upheld manually: this function does not return
        // (or unwind — see the catch below) until `active == 0`, i.e. until
        // every worker has finished calling the closure and can never touch
        // it again.
        let short: *const (dyn Fn(usize) + Sync) = f;
        let job = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(short)
        });
        let workers = {
            let mut st = shared.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(job);
            st.active = self.threads - 1;
            st.panicked = false;
            shared.work_cv.notify_all();
            st.active
        };
        debug_assert_eq!(workers, self.threads - 1);

        // The caller takes share 0. Catch a panic so we still wait for the
        // workers (they may be borrowing our stack) before unwinding.
        let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        let mut st = shared.state.lock().unwrap();
        while st.active > 0 {
            st = shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);

        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("worker pool: a broadcast job panicked on a worker thread");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let Some(spawned) = self.lazy.get_mut().unwrap().take() else { return };
        {
            let mut st = spawned.shared.state.lock().unwrap();
            st.shutdown = true;
            spawned.shared.work_cv.notify_all();
        }
        for h in spawned.handles {
            let _ = h.join();
        }
    }
}

fn spawn_workers(n: usize) -> Spawned {
    let shared = std::sync::Arc::new(Shared {
        state: Mutex::new(PoolState {
            epoch: 0,
            job: None,
            active: 0,
            panicked: false,
            shutdown: false,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    });
    let handles = (0..n)
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("relstore-worker-{}", i + 1))
                .spawn(move || worker_loop(&shared, i + 1))
                .expect("spawn pool worker")
        })
        .collect();
    Spawned { shared, handles }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen {
                    // `job` is always set when the epoch advances: the
                    // caller only clears it after every worker finished.
                    let job = st.job.expect("job present for a new epoch");
                    seen = st.epoch;
                    break job;
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        // SAFETY: `broadcast` keeps the closure alive until `active`
        // reaches zero, which only happens after this call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index) }));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_on_every_worker_and_reuses_threads() {
        let pool = WorkerPool::new(4);
        for _ in 0..3 {
            let mask = AtomicUsize::new(0);
            pool.broadcast(&|i| {
                mask.fetch_or(1 << i, Ordering::Relaxed);
            });
            assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
        }
    }

    #[test]
    fn width_one_never_spawns() {
        let pool = WorkerPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.broadcast(&|i| {
            assert_eq!(i, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert!(pool.lazy.lock().unwrap().is_none(), "no workers spawned at width 1");
    }

    #[test]
    fn borrows_stack_data_safely() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..999).collect();
        let sums: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        pool.broadcast(&|i| {
            let s: u64 = data.iter().skip(i).step_by(3).sum();
            sums.lock().unwrap().push(s);
        });
        let total: u64 = sums.lock().unwrap().iter().sum();
        assert_eq!(total, 999 * 998 / 2);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(&|i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // The pool stays usable after a panicked broadcast.
        let hits = AtomicUsize::new(0);
        pool.broadcast(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
