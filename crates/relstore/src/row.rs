//! Null-suppressing row storage.
//!
//! The DB2RDF DPH/RPH relations are wide (dozens to hundreds of columns) and
//! extremely sparse: §2.3 of the paper reports 65–98% NULL cells and relies
//! on the relational engine's *value compression* so that NULLs cost almost
//! nothing on disk. [`CompressedRow`] reproduces that: a row stores one
//! presence bit per column plus the non-null values only, so a 100-column row
//! with 5 set cells costs 5 values + 13 bytes of bitmap.

use crate::value::Value;

/// A row stored with null suppression: a presence bitmap plus packed
/// non-null values.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedRow {
    bitmap: Box<[u64]>,
    values: Box<[Value]>,
}

impl CompressedRow {
    /// Compress a dense slice of values (NULLs are dropped).
    pub fn from_values(vals: &[Value]) -> Self {
        let words = vals.len().div_ceil(64);
        let mut bitmap = vec![0u64; words];
        let mut values = Vec::new();
        for (i, v) in vals.iter().enumerate() {
            if !v.is_null() {
                bitmap[i / 64] |= 1 << (i % 64);
                values.push(v.clone());
            }
        }
        CompressedRow { bitmap: bitmap.into_boxed_slice(), values: values.into_boxed_slice() }
    }

    /// Number of non-null cells.
    pub fn non_null_count(&self) -> usize {
        self.values.len()
    }

    /// Read column `i`, returning `Value::Null` for suppressed cells or
    /// columns beyond the stored bitmap (rows created before a table was
    /// widened read as NULL in the new columns).
    pub fn get(&self, i: usize) -> Value {
        let word = i / 64;
        if word >= self.bitmap.len() || self.bitmap[word] & (1 << (i % 64)) == 0 {
            return Value::Null;
        }
        // Rank: count set bits strictly before position i.
        let mut rank = 0usize;
        for w in 0..word {
            rank += self.bitmap[w].count_ones() as usize;
        }
        let mask = (1u64 << (i % 64)) - 1;
        rank += (self.bitmap[word] & mask).count_ones() as usize;
        self.values[rank].clone()
    }

    /// Decompress into a dense vector of `ncols` values.
    pub fn decompress(&self, ncols: usize) -> Vec<Value> {
        let mut out = Vec::new();
        self.decompress_into(ncols, &mut out);
        out
    }

    /// Like [`CompressedRow::decompress`], but reuses `out`'s allocation —
    /// the scan hot loop decompresses into a scratch buffer and only turns
    /// it into an owned row for rows that survive the pushed filters.
    pub fn decompress_into(&self, ncols: usize, out: &mut Vec<Value>) {
        out.clear();
        // Fully dense prefix (narrow fact tables like a triple relation have
        // no NULLs at all): the first `ncols` values are exactly the row, no
        // bitmap walk needed.
        if self.values.len() >= ncols && self.first_bits_set(ncols) {
            out.extend_from_slice(&self.values[..ncols]);
            return;
        }
        out.resize(ncols, Value::Null);
        let mut next = 0usize;
        for (i, slot) in out.iter_mut().enumerate().take(self.bitmap.len() * 64) {
            if self.bitmap[i / 64] & (1 << (i % 64)) != 0 {
                *slot = self.values[next].clone();
                next += 1;
            }
        }
    }

    /// Are bitmap bits `0..n` all set?
    fn first_bits_set(&self, n: usize) -> bool {
        if self.bitmap.len() < n.div_ceil(64) {
            return false;
        }
        let (full, rem) = (n / 64, n % 64);
        self.bitmap[..full].iter().all(|w| *w == u64::MAX)
            && (rem == 0 || self.bitmap[full] & ((1u64 << rem) - 1) == (1u64 << rem) - 1)
    }

    /// Approximate storage footprint in bytes: bitmap words + one fixed slot
    /// per *non-null* value + string heap bytes. This is the quantity the
    /// §2.3 NULL-storage experiment reports.
    pub fn storage_bytes(&self) -> usize {
        let fixed_slot = std::mem::size_of::<Value>();
        self.bitmap.len() * 8
            + self.values.len() * fixed_slot
            + self.values.iter().map(Value::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[Value]) -> CompressedRow {
        CompressedRow::from_values(vals)
    }

    #[test]
    fn roundtrip_dense() {
        let vals = vec![Value::Int(1), Value::str("x"), Value::Bool(true)];
        assert_eq!(row(&vals).decompress(3), vals);
    }

    #[test]
    fn roundtrip_sparse() {
        let mut vals = vec![Value::Null; 130];
        vals[0] = Value::Int(7);
        vals[63] = Value::str("end of word");
        vals[64] = Value::str("start of word");
        vals[129] = Value::Double(2.5);
        let r = row(&vals);
        assert_eq!(r.non_null_count(), 4);
        assert_eq!(r.decompress(130), vals);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&r.get(i), v, "col {i}");
        }
    }

    #[test]
    fn get_beyond_bitmap_is_null() {
        let r = row(&[Value::Int(1)]);
        assert!(r.get(500).is_null());
    }

    #[test]
    fn all_null_row() {
        let r = row(&vec![Value::Null; 10]);
        assert_eq!(r.non_null_count(), 0);
        assert_eq!(r.decompress(10), vec![Value::Null; 10]);
    }

    #[test]
    fn nulls_cost_only_bitmap_bits() {
        let narrow = row(&[Value::Int(1), Value::Int(2)]);
        let mut wide_vals = vec![Value::Null; 128];
        wide_vals[0] = Value::Int(1);
        wide_vals[1] = Value::Int(2);
        let wide = row(&wide_vals);
        // 126 extra NULL columns cost exactly one extra bitmap word (8 bytes).
        assert_eq!(wide.storage_bytes() - narrow.storage_bytes(), 8);
    }

    #[test]
    fn truncating_decompress_with_offset_values_avoids_dense_fast_path() {
        // Two stored values but NOT in the first two columns: the dense
        // prefix check must reject this even though values.len() >= ncols.
        let r = row(&[Value::Null, Value::Int(1), Value::Int(2)]);
        assert_eq!(r.decompress(2), vec![Value::Null, Value::Int(1)]);
    }

    #[test]
    fn decompress_truncates_to_requested_width() {
        let r = row(&[Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(r.decompress(2), vec![Value::Int(1), Value::Int(2)]);
    }
}
