//! Binary snapshot checkpoints of full table state.
//!
//! ## On-disk format
//!
//! ```text
//! file    := magic payload crc:u32le       (crc = CRC32(payload))
//! magic   := "RSNAPv1\0"                   (8 bytes)
//! payload := ntables:u32 table*
//! table   := schema nindexes:u32 (column:str kind:u8)* nrows:u64 row*
//! row     := value * width                 (dense; NULLs explicit)
//! ```
//!
//! A snapshot is written atomically (`.tmp` + fsync + rename), so recovery
//! sees either the previous snapshot or the complete new one — never a torn
//! file with a valid name. The trailing CRC covers the whole payload; any
//! bit flip fails validation and recovery falls back to the previous
//! generation (see `Database::open`).

use std::path::Path;

use crate::codec::{crc32, put_index_kind, put_schema, put_u32, put_u64, put_value, Reader};
use crate::error::{Error, Result};
use crate::io::{atomic_write, FaultHandle};
use crate::table::{IndexKind, Table, TableSchema};
use crate::value::Value;

pub const SNAPSHOT_MAGIC: &[u8; 8] = b"RSNAPv1\0";

/// One table's decoded snapshot contents.
pub struct SnapshotTable {
    pub schema: TableSchema,
    pub indexes: Vec<(String, IndexKind)>,
    pub rows: Vec<Vec<Value>>,
}

/// Serialize `tables` (sorted by name for determinism) and write the
/// snapshot atomically to `path`.
pub fn write_snapshot(tables: &[&Table], path: &Path, faults: &FaultHandle) -> Result<()> {
    let mut sorted: Vec<&&Table> = tables.iter().collect();
    sorted.sort_by(|a, b| a.schema.name.cmp(&b.schema.name));

    let mut payload = Vec::new();
    put_u32(&mut payload, sorted.len() as u32);
    for t in sorted {
        put_schema(&mut payload, &t.schema);
        let indexes = t.index_specs();
        put_u32(&mut payload, indexes.len() as u32);
        for (col, kind) in &indexes {
            crate::codec::put_str(&mut payload, col);
            put_index_kind(&mut payload, *kind);
        }
        put_u64(&mut payload, t.row_count() as u64);
        let width = t.width();
        for rid in 0..t.row_count() {
            for v in t.row_values(rid as u32) {
                put_value(&mut payload, &v);
            }
        }
        let _ = width;
    }

    let mut file = Vec::with_capacity(SNAPSHOT_MAGIC.len() + payload.len() + 4);
    file.extend_from_slice(SNAPSHOT_MAGIC);
    let crc = crc32(&payload);
    file.extend_from_slice(&payload);
    put_u32(&mut file, crc);
    atomic_write(path, &file, faults)?;
    Ok(())
}

/// Load and validate a snapshot. Any structural damage — bad magic, short
/// file, CRC mismatch, undecodable payload — is an [`Error::Corrupt`];
/// loading never panics on arbitrary bytes. The read goes through the fault
/// layer: a short read truncates the payload and therefore fails the CRC,
/// so an unreadable snapshot degrades exactly like a corrupt one.
pub fn load_snapshot(path: &Path, faults: &FaultHandle) -> Result<Vec<SnapshotTable>> {
    let bytes = crate::io::read_file(path, faults)?;
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 {
        return Err(Error::Corrupt("snapshot shorter than header".into()));
    }
    if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(Error::Corrupt("bad snapshot magic".into()));
    }
    let payload = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 4];
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(payload) != stored_crc {
        return Err(Error::Corrupt("snapshot CRC mismatch".into()));
    }

    let mut r = Reader::new(payload);
    let ntables = r.take_u32()? as usize;
    let mut out = Vec::with_capacity(ntables.min(1 << 16));
    for _ in 0..ntables {
        let schema = r.take_schema()?;
        let nindexes = r.take_u32()? as usize;
        let mut indexes = Vec::with_capacity(nindexes.min(1 << 10));
        for _ in 0..nindexes {
            let col = r.take_str()?;
            let kind = r.take_index_kind()?;
            indexes.push((col, kind));
        }
        let nrows = r.take_u64()? as usize;
        let width = schema.columns.len();
        let mut rows = Vec::with_capacity(nrows.min(1 << 24));
        for _ in 0..nrows {
            let mut row = Vec::with_capacity(width);
            for _ in 0..width {
                row.push(r.take_value()?);
            }
            rows.push(row);
        }
        out.push(SnapshotTable { schema, indexes, rows });
    }
    if r.remaining() != 0 {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes in snapshot payload",
            r.remaining()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::no_faults;
    use crate::value::SqlType;

    fn tmp_snap(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("relstore-snap-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("snapshot.1")
    }

    fn sample_table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![("a".into(), SqlType::Int), ("b".into(), SqlType::Text)],
        ));
        t.insert(&[Value::Int(1), Value::str("x")]).unwrap();
        t.insert(&[Value::Int(2), Value::Null]).unwrap();
        t.create_index("a", IndexKind::Hash).unwrap();
        t
    }

    #[test]
    fn roundtrip() {
        let path = tmp_snap("roundtrip");
        let t = sample_table();
        write_snapshot(&[&t], &path, &no_faults()).unwrap();
        let tables = load_snapshot(&path, &no_faults()).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].schema, t.schema);
        assert_eq!(tables[0].indexes, vec![("a".to_string(), IndexKind::Hash)]);
        assert_eq!(
            tables[0].rows,
            vec![vec![Value::Int(1), Value::str("x")], vec![Value::Int(2), Value::Null]]
        );
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let path = tmp_snap("bitflip");
        let t = sample_table();
        write_snapshot(&[&t], &path, &no_faults()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[byte] ^= 0x10;
            std::fs::write(&path, &dirty).unwrap();
            assert!(
                load_snapshot(&path, &no_faults()).is_err(),
                "bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn truncations_are_corrupt_not_panic() {
        let path = tmp_snap("trunc");
        let t = sample_table();
        write_snapshot(&[&t], &path, &no_faults()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(load_snapshot(&path, &no_faults()).is_err(), "truncation at {cut} accepted");
        }
    }
}
