//! SQL abstract syntax tree for the dialect described in DESIGN.md.

use crate::value::{SqlType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    CreateTable {
        name: String,
        columns: Vec<(String, SqlType)>,
    },
    CreateIndex {
        table: String,
        column: String,
        /// `USING BTREE` selects a B-tree; default is hash.
        btree: bool,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Query(Query),
}

/// A full query: optional CTEs, a union-of-selects body, and trailing
/// ORDER BY / LIMIT / OFFSET.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub ctes: Vec<(String, Query)>,
    pub body: QueryBody,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    Select(Box<Select>),
    Union { left: Box<QueryBody>, right: Box<QueryBody>, all: bool },
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub asc: bool,
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    /// Comma-separated FROM factors, each with its chain of explicit joins.
    pub from: Vec<TableFactor>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub struct TableFactor {
    pub relation: Relation,
    pub alias: Option<String>,
    pub joins: Vec<Join>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Relation {
    /// Base table or CTE reference.
    Named(String),
    /// Parenthesized subquery.
    Subquery(Box<Query>),
    /// Lateral value-unnest standing in for DB2's `TABLE(...)` construct
    /// (paper Fig. 13): `UNNEST ((a, b), (c, d)) AS L(p, v)` emits, for each
    /// input row, one output row per tuple whose first element is non-NULL.
    Unnest { tuples: Vec<Vec<Expr>>, columns: Vec<String> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub relation: Relation,
    pub alias: Option<String>,
    pub on: Expr,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    /// String concatenation `||`.
    Concat,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `name` or `qualifier.name`.
    Column { qualifier: Option<String>, name: String },
    Literal(Value),
    Binary { op: BinaryOp, left: Box<Expr>, right: Box<Expr> },
    Unary { op: UnaryOp, expr: Box<Expr> },
    IsNull { expr: Box<Expr>, negated: bool },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool },
    Case {
        /// Searched CASE only (`CASE WHEN cond THEN v ... [ELSE v] END`).
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Cast { expr: Box<Expr>, ty: SqlType },
    /// Scalar or aggregate function call; aggregates are recognized at
    /// planning time. `COUNT(*)` is represented with `star = true`;
    /// `distinct` marks `AGG(DISTINCT expr)` and only makes sense on
    /// aggregates.
    Func { name: String, args: Vec<Expr>, star: bool, distinct: bool },
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column { qualifier: None, name: name.to_string() }
    }

    pub fn qcol(q: &str, name: &str) -> Expr {
        Expr::Column { qualifier: Some(q.to_string()), name: name.to_string() }
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// Split a conjunction into its AND-ed factors.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary { op: BinaryOp::And, left, right } = e {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }
}
