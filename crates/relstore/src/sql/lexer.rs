//! SQL tokenizer.

use crate::error::{Error, Result};
use crate::value::Value;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword, normalized to lowercase.
    Ident(String),
    /// `"quoted"` identifier, case preserved.
    QuotedIdent(String),
    /// `'string'` literal.
    Str(String),
    Int(i64),
    Double(f64),
    // punctuation / operators
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Semicolon,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
    Eof,
}

#[derive(Debug, Clone)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let err = |msg: &str, at: usize| Error::Parse { message: msg.to_string(), offset: at };
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Spanned { token: Token::LParen, offset: i });
                i += 1;
            }
            b')' => {
                out.push(Spanned { token: Token::RParen, offset: i });
                i += 1;
            }
            b',' => {
                out.push(Spanned { token: Token::Comma, offset: i });
                i += 1;
            }
            b'.' => {
                out.push(Spanned { token: Token::Dot, offset: i });
                i += 1;
            }
            b'*' => {
                out.push(Spanned { token: Token::Star, offset: i });
                i += 1;
            }
            b'+' => {
                out.push(Spanned { token: Token::Plus, offset: i });
                i += 1;
            }
            b'-' => {
                out.push(Spanned { token: Token::Minus, offset: i });
                i += 1;
            }
            b'/' => {
                out.push(Spanned { token: Token::Slash, offset: i });
                i += 1;
            }
            b';' => {
                out.push(Spanned { token: Token::Semicolon, offset: i });
                i += 1;
            }
            b'=' => {
                out.push(Spanned { token: Token::Eq, offset: i });
                i += 1;
            }
            b'!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(Spanned { token: Token::NotEq, offset: i });
                i += 2;
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Spanned { token: Token::NotEq, offset: i });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned { token: Token::LtEq, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Lt, offset: i });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Spanned { token: Token::GtEq, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Gt, offset: i });
                    i += 1;
                }
            }
            b'|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    out.push(Spanned { token: Token::Concat, offset: i });
                    i += 2;
                } else {
                    return Err(err("unexpected '|'", i));
                }
            }
            b'\'' => {
                // string literal with '' escape
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // copy one UTF-8 character
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len])
                                .map_err(|_| err("invalid UTF-8 in string", i))?,
                        );
                        i += ch_len;
                    }
                }
                out.push(Spanned { token: Token::Str(s), offset: start });
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != b'"' {
                    s.push(bytes[i] as char);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(err("unterminated quoted identifier", start));
                }
                i += 1;
                out.push(Spanned { token: Token::QuotedIdent(s), offset: start });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_double = false;
                if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_double = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_double = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                let token = if is_double {
                    Token::Double(text.parse().map_err(|_| err("bad number", start))?)
                } else {
                    Token::Int(text.parse().map_err(|_| err("integer out of range", start))?)
                };
                out.push(Spanned { token, offset: start });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let word = std::str::from_utf8(&bytes[start..i]).unwrap().to_ascii_lowercase();
                out.push(Spanned { token: Token::Ident(word), offset: start });
            }
            _ => return Err(err(&format!("unexpected character {:?}", c as char), i)),
        }
    }
    out.push(Spanned { token: Token::Eof, offset: input.len() });
    Ok(out)
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escape a string for embedding as a SQL literal.
pub fn quote_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
    out
}

/// Literal SQL text for a [`Value`].
pub fn value_to_sql(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Double(d) => {
            if d.fract() == 0.0 && d.is_finite() {
                format!("{d:.1}")
            } else {
                d.to_string()
            }
        }
        Value::Str(s) => quote_str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT a.b, 'it''s' FROM t WHERE x <= 1.5"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Comma,
                Token::Str("it's".into()),
                Token::Ident("from".into()),
                Token::Ident("t".into()),
                Token::Ident("where".into()),
                Token::Ident("x".into()),
                Token::LtEq,
                Token::Double(1.5),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<> != < > >= || ="),
            vec![
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::Gt,
                Token::GtEq,
                Token::Concat,
                Token::Eq,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("a -- comment\n b"), vec![
            Token::Ident("a".into()),
            Token::Ident("b".into()),
            Token::Eof
        ]);
    }

    #[test]
    fn quoted_identifier_preserves_case() {
        assert_eq!(toks("\"MiXeD\""), vec![Token::QuotedIdent("MiXeD".into()), Token::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(toks("1e3"), vec![Token::Double(1000.0), Token::Eof]);
    }

    #[test]
    fn unicode_in_string_literal() {
        assert_eq!(toks("'héllo ☃'"), vec![Token::Str("héllo ☃".into()), Token::Eof]);
    }

    #[test]
    fn quote_str_escapes() {
        assert_eq!(quote_str("it's"), "'it''s'");
        assert_eq!(value_to_sql(&Value::str("a'b")), "'a''b'");
        assert_eq!(value_to_sql(&Value::Null), "NULL");
        assert_eq!(value_to_sql(&Value::Double(2.0)), "2.0");
    }
}
