//! Recursive-descent SQL parser.

use crate::error::{Error, Result};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Spanned, Token};
use crate::value::{SqlType, Value};

pub fn parse_statement(sql: &str) -> Result<Stmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a standalone query (no DDL/DML).
pub fn parse_query(sql: &str) -> Result<Query> {
    match parse_statement(sql)? {
        Stmt::Query(q) => Ok(q),
        _ => Err(Error::Plan("expected a query".into())),
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(Error::Parse { message: msg.into(), offset: self.offset() })
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consume a keyword (lowercased identifier) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Token::Ident(w) = self.peek() {
            if w == kw {
                self.advance();
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(w) if w == kw)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {}", kw.to_uppercase()))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat_if(t) {
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input: {:?}", self.peek()))
        }
    }

    /// Identifier (possibly quoted), normalized to lowercase.
    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Token::Ident(w) => {
                if RESERVED.contains(&w.as_str()) {
                    self.err(format!("reserved word {w:?} used as identifier"))
                } else {
                    Ok(w)
                }
            }
            Token::QuotedIdent(w) => Ok(w.to_ascii_lowercase()),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.peek_kw("create") {
            self.create()
        } else if self.eat_kw("insert") {
            self.insert()
        } else {
            Ok(Stmt::Query(self.query()?))
        }
    }

    fn create(&mut self) -> Result<Stmt> {
        self.expect_kw("create")?;
        if self.eat_kw("table") {
            let name = self.ident()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = self.sql_type()?;
                columns.push((col, ty));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            Ok(Stmt::CreateTable { name, columns })
        } else if self.eat_kw("index") {
            // CREATE INDEX [name] ON table(column) [USING BTREE]
            if !self.peek_kw("on") {
                let _ = self.ident()?; // optional index name, ignored
            }
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect(&Token::LParen)?;
            let column = self.ident()?;
            self.expect(&Token::RParen)?;
            let mut btree = false;
            if self.eat_kw("using") {
                let kind = self.ident()?;
                match kind.as_str() {
                    "btree" => btree = true,
                    "hash" => btree = false,
                    other => return self.err(format!("unknown index kind {other:?}")),
                }
            }
            Ok(Stmt::CreateIndex { table, column, btree })
        } else {
            self.err("expected TABLE or INDEX after CREATE")
        }
    }

    fn sql_type(&mut self) -> Result<SqlType> {
        let name = self.ident()?;
        match name.as_str() {
            "int" | "integer" | "bigint" => Ok(SqlType::Int),
            "double" | "float" | "real" => {
                // allow DOUBLE PRECISION
                let _ = self.eat_kw("precision");
                Ok(SqlType::Double)
            }
            "text" | "varchar" | "char" | "string" => {
                if self.eat_if(&Token::LParen) {
                    match self.advance() {
                        Token::Int(_) => {}
                        _ => return self.err("expected length in type"),
                    }
                    self.expect(&Token::RParen)?;
                }
                Ok(SqlType::Text)
            }
            "bool" | "boolean" => Ok(SqlType::Bool),
            other => self.err(format!("unknown type {other:?}")),
        }
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = None;
        if self.eat_if(&Token::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            columns = Some(cols);
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(Stmt::Insert { table, columns, rows })
    }

    fn query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                let name = self.ident()?;
                self.expect_kw("as")?;
                self.expect(&Token::LParen)?;
                let q = self.query()?;
                self.expect(&Token::RParen)?;
                ctes.push((name, q));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.query_body()?;
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc"); // optional explicit ASC
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_kw("limit") {
                match self.advance() {
                    Token::Int(n) if n >= 0 => limit = Some(n as u64),
                    _ => return self.err("expected non-negative integer after LIMIT"),
                }
            } else if self.eat_kw("offset") {
                match self.advance() {
                    Token::Int(n) if n >= 0 => offset = Some(n as u64),
                    _ => return self.err("expected non-negative integer after OFFSET"),
                }
            } else {
                break;
            }
        }
        Ok(Query { ctes, body, order_by, limit, offset })
    }

    fn query_body(&mut self) -> Result<QueryBody> {
        let mut left = self.query_term()?;
        while self.eat_kw("union") {
            let all = self.eat_kw("all");
            let right = self.query_term()?;
            left = QueryBody::Union { left: Box::new(left), right: Box::new(right), all };
        }
        Ok(left)
    }

    fn query_term(&mut self) -> Result<QueryBody> {
        if self.eat_if(&Token::LParen) {
            let body = self.query_body()?;
            self.expect(&Token::RParen)?;
            Ok(body)
        } else {
            Ok(QueryBody::Select(Box::new(self.select()?)))
        }
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projection = Vec::new();
        loop {
            if self.eat_if(&Token::Star) {
                projection.push(SelectItem::Wildcard);
            } else if let Token::Ident(name) = self.peek().clone() {
                // lookahead for `alias.*`
                if !RESERVED.contains(&name.as_str())
                    && matches!(self.tokens.get(self.pos + 1).map(|s| &s.token), Some(Token::Dot))
                    && matches!(self.tokens.get(self.pos + 2).map(|s| &s.token), Some(Token::Star))
                {
                    self.advance();
                    self.advance();
                    self.advance();
                    projection.push(SelectItem::QualifiedWildcard(name));
                } else {
                    projection.push(self.select_expr_item()?);
                }
            } else {
                projection.push(self.select_expr_item()?);
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.table_factor()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };
        Ok(Select { distinct, projection, from, where_clause, group_by, having })
    }

    fn select_expr_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("as")
            || matches!(self.peek(), Token::Ident(w) if !RESERVED.contains(&w.as_str()))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn relation(&mut self) -> Result<(Relation, Option<String>)> {
        if self.eat_kw("unnest") {
            self.expect(&Token::LParen)?;
            let mut tuples = Vec::new();
            loop {
                if self.eat_if(&Token::LParen) {
                    let mut tuple = Vec::new();
                    loop {
                        tuple.push(self.expr()?);
                        if !self.eat_if(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                    tuples.push(tuple);
                } else {
                    tuples.push(vec![self.expr()?]);
                }
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            self.expect_kw("as")?;
            let alias = self.ident()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            let arity = tuples[0].len();
            if tuples.iter().any(|t| t.len() != arity) || columns.len() != arity {
                return self.err("UNNEST tuples and column list must have the same arity");
            }
            Ok((Relation::Unnest { tuples, columns }, Some(alias)))
        } else if self.eat_if(&Token::LParen) {
            let q = self.query()?;
            self.expect(&Token::RParen)?;
            let alias = self.table_alias()?;
            Ok((Relation::Subquery(Box::new(q)), alias))
        } else {
            let name = self.ident()?;
            let alias = self.table_alias()?;
            Ok((Relation::Named(name), alias))
        }
    }

    fn table_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as")
            || matches!(self.peek(), Token::Ident(w) if !RESERVED.contains(&w.as_str()))
        {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn table_factor(&mut self) -> Result<TableFactor> {
        let (relation, alias) = self.relation()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.peek_kw("join") || self.peek_kw("inner") {
                let _ = self.eat_kw("inner");
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.peek_kw("left") {
                self.expect_kw("left")?;
                let _ = self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::LeftOuter
            } else {
                break;
            };
            let (rel, alias) = self.relation()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            joins.push(Join { kind, relation: rel, alias, on });
        }
        Ok(TableFactor { relation, alias, joins })
    }

    // ---- expressions, precedence climbing ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL / [NOT] IN / [NOT] LIKE / comparison operators
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = if self.peek_kw("not") {
            // could be NOT IN / NOT LIKE
            let next = self.tokens.get(self.pos + 1).map(|s| &s.token);
            match next {
                Some(Token::Ident(w)) if w == "in" || w == "like" => {
                    self.advance();
                    true
                }
                _ => false,
            }
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if negated {
            return self.err("expected IN or LIKE after NOT");
        }
        let op = match self.peek() {
            Token::Eq => BinaryOp::Eq,
            Token::NotEq => BinaryOp::NotEq,
            Token::Lt => BinaryOp::Lt,
            Token::LtEq => BinaryOp::LtEq,
            Token::Gt => BinaryOp::Gt,
            Token::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::binary(op, left, right))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                Token::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_if(&Token::Minus) {
            let inner = self.unary()?;
            Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) })
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(n) => {
                self.advance();
                Ok(Expr::lit(Value::Int(n)))
            }
            Token::Double(d) => {
                self.advance();
                Ok(Expr::lit(Value::Double(d)))
            }
            Token::Str(s) => {
                self.advance();
                Ok(Expr::lit(Value::str(s)))
            }
            Token::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(word) => match word.as_str() {
                "null" => {
                    self.advance();
                    Ok(Expr::lit(Value::Null))
                }
                "true" => {
                    self.advance();
                    Ok(Expr::lit(Value::Bool(true)))
                }
                "false" => {
                    self.advance();
                    Ok(Expr::lit(Value::Bool(false)))
                }
                "case" => self.case_expr(),
                "cast" => {
                    self.advance();
                    self.expect(&Token::LParen)?;
                    let inner = self.expr()?;
                    self.expect_kw("as")?;
                    let ty = self.sql_type()?;
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Cast { expr: Box::new(inner), ty })
                }
                _ => self.ident_expr(),
            },
            Token::QuotedIdent(_) => self.ident_expr(),
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw("case")?;
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let val = self.expr()?;
            branches.push((cond, val));
        }
        if branches.is_empty() {
            return self.err("CASE requires at least one WHEN branch");
        }
        let else_expr =
            if self.eat_kw("else") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("end")?;
        Ok(Expr::Case { branches, else_expr })
    }

    fn ident_expr(&mut self) -> Result<Expr> {
        let first = self.ident()?;
        if self.eat_if(&Token::LParen) {
            // function call
            if self.eat_if(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::Func { name: first, args: vec![], star: true, distinct: false });
            }
            let distinct = self.eat_kw("distinct");
            let mut args = Vec::new();
            if !self.eat_if(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else if distinct {
                return self.err("DISTINCT requires an argument");
            }
            return Ok(Expr::Func { name: first, args, star: false, distinct });
        }
        if self.eat_if(&Token::Dot) {
            let name = self.ident()?;
            return Ok(Expr::Column { qualifier: Some(first), name });
        }
        Ok(Expr::Column { qualifier: None, name: first })
    }
}

/// Words that cannot be used as bare identifiers (use quoted identifiers to
/// bypass).
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "by", "having", "order", "limit", "offset", "union",
    "all", "distinct", "and", "or", "not", "is", "null", "in", "like", "case", "when", "then",
    "else", "end", "cast", "as", "join", "inner", "left", "outer", "on", "with", "create",
    "table", "index", "insert", "into", "values", "unnest", "true", "false", "using", "asc",
    "desc",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE dph (entry TEXT, spill INT, pred0 TEXT, val0 TEXT)",
        )
        .unwrap();
        match stmt {
            Stmt::CreateTable { name, columns } => {
                assert_eq!(name, "dph");
                assert_eq!(columns.len(), 4);
                assert_eq!(columns[1], ("spill".to_string(), SqlType::Int));
            }
            _ => panic!("wrong stmt"),
        }
    }

    #[test]
    fn parses_create_index() {
        let stmt = parse_statement("CREATE INDEX i ON dph(entry) USING BTREE").unwrap();
        assert_eq!(
            stmt,
            Stmt::CreateIndex { table: "dph".into(), column: "entry".into(), btree: true }
        );
    }

    #[test]
    fn parses_insert_multirow() {
        let stmt =
            parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        match stmt {
            Stmt::Insert { table, columns, rows } => {
                assert_eq!(table, "t");
                assert_eq!(columns, Some(vec!["a".into(), "b".into()]));
                assert_eq!(rows.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_select_with_joins_and_cte() {
        let q = parse_query(
            "WITH q1 AS (SELECT entry FROM rph WHERE entry = 'x'),
                  q2 AS (SELECT t.entry AS y FROM dph AS T LEFT OUTER JOIN ds AS S ON t.val0 = s.l_id)
             SELECT q1.entry, q2.y FROM q1, q2 WHERE q1.entry = q2.y ORDER BY 1 DESC LIMIT 10 OFFSET 2",
        )
        .unwrap();
        assert_eq!(q.ctes.len(), 2);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(2));
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
    }

    #[test]
    fn parses_union() {
        let q = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v")
            .unwrap();
        // left-assoc: (t UNION ALL u) UNION v
        match q.body {
            QueryBody::Union { all, left, .. } => {
                assert!(!all);
                assert!(matches!(*left, QueryBody::Union { all: true, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_case_coalesce_cast() {
        let q = parse_query(
            "SELECT CASE WHEN t.p = 'x' THEN t.v ELSE NULL END AS a,
                    COALESCE(s.elm, t.v) AS b,
                    CAST(t.v AS DOUBLE) AS c
             FROM t LEFT JOIN s ON t.v = s.l_id",
        )
        .unwrap();
        match q.body {
            QueryBody::Select(sel) => {
                assert_eq!(sel.projection.len(), 3);
                assert!(matches!(
                    &sel.projection[1],
                    SelectItem::Expr { expr: Expr::Func { name, .. }, .. } if name == "coalesce"
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_unnest() {
        let q = parse_query(
            "SELECT l.p, l.v FROM t, UNNEST ((t.pred0, t.val0), (t.pred1, t.val1)) AS L(p, v) WHERE l.v IS NOT NULL",
        )
        .unwrap();
        match q.body {
            QueryBody::Select(sel) => {
                assert_eq!(sel.from.len(), 2);
                match &sel.from[1].relation {
                    Relation::Unnest { tuples, columns } => {
                        assert_eq!(tuples.len(), 2);
                        assert_eq!(columns, &vec!["p".to_string(), "v".to_string()]);
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_in_and_like_and_not() {
        let q = parse_query(
            "SELECT a FROM t WHERE a IN ('x','y') AND b NOT LIKE '%z%' AND NOT c = 1",
        )
        .unwrap();
        match q.body {
            QueryBody::Select(sel) => {
                let conjs = sel.where_clause.as_ref().unwrap().conjuncts().len();
                assert_eq!(conjs, 3);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_group_by_having_aggregates() {
        let q = parse_query(
            "SELECT a, COUNT(*) AS n, SUM(b) FROM t GROUP BY a HAVING COUNT(*) > 2",
        )
        .unwrap();
        match q.body {
            QueryBody::Select(sel) => {
                assert_eq!(sel.group_by.len(), 1);
                assert!(sel.having.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_reserved_word_as_identifier() {
        assert!(parse_query("SELECT select FROM t").is_err());
    }

    #[test]
    fn reports_offset_on_error() {
        let err = parse_query("SELECT a FROM").unwrap_err();
        match err {
            Error::Parse { offset, .. } => assert!(offset >= 13),
            _ => panic!(),
        }
    }

    #[test]
    fn implicit_alias_without_as() {
        let q = parse_query("SELECT t.a col1 FROM dph t").unwrap();
        match q.body {
            QueryBody::Select(sel) => {
                assert!(matches!(&sel.projection[0], SelectItem::Expr { alias: Some(a), .. } if a == "col1"));
                assert_eq!(sel.from[0].alias, Some("t".into()));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn qualified_wildcard() {
        let q = parse_query("SELECT t.*, u.a FROM t, u").unwrap();
        match q.body {
            QueryBody::Select(sel) => {
                assert!(matches!(&sel.projection[0], SelectItem::QualifiedWildcard(a) if a == "t"));
            }
            _ => panic!(),
        }
    }
}
