//! Tables, schemas and secondary indexes.

use std::collections::{BTreeMap, HashMap};

use crate::error::{plan_err, Result};
use crate::row::CompressedRow;
use crate::value::{SqlType, Value};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: SqlType,
}

/// A table schema: ordered columns with unique (lowercase) names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<(String, SqlType)>) -> Self {
        TableSchema {
            name: name.into().to_ascii_lowercase(),
            columns: columns
                .into_iter()
                .map(|(name, ty)| ColumnDef { name: name.to_ascii_lowercase(), ty })
                .collect(),
        }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }
}

/// Secondary index kinds. Hash indexes serve equality lookups (the only kind
/// the DB2RDF schema needs on `entry` and `l_id`); B-trees also serve range
/// scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    BTree,
}

#[derive(Debug, Clone)]
pub enum Index {
    Hash(HashMap<Value, Vec<u32>>),
    BTree(BTreeMap<Value, Vec<u32>>),
}

impl Index {
    fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::Hash => Index::Hash(HashMap::new()),
            IndexKind::BTree => Index::BTree(BTreeMap::new()),
        }
    }

    fn insert(&mut self, key: Value, row_id: u32) {
        if key.is_null() {
            return; // NULL keys are not indexed (SQL equality never matches them).
        }
        match self {
            Index::Hash(m) => m.entry(key).or_default().push(row_id),
            Index::BTree(m) => m.entry(key).or_default().push(row_id),
        }
    }

    fn remove(&mut self, key: &Value, row_id: u32) {
        if key.is_null() {
            return;
        }
        match self {
            Index::Hash(m) => {
                if let Some(v) = m.get_mut(key) {
                    v.retain(|&r| r != row_id);
                    if v.is_empty() {
                        m.remove(key);
                    }
                }
            }
            Index::BTree(m) => {
                if let Some(v) = m.get_mut(key) {
                    v.retain(|&r| r != row_id);
                    if v.is_empty() {
                        m.remove(key);
                    }
                }
            }
        }
    }

    /// Row ids matching an equality probe.
    pub fn lookup(&self, key: &Value) -> &[u32] {
        static EMPTY: [u32; 0] = [];
        if key.is_null() {
            return &EMPTY;
        }
        match self {
            Index::Hash(m) => m.get(key).map(Vec::as_slice).unwrap_or(&EMPTY),
            Index::BTree(m) => m.get(key).map(Vec::as_slice).unwrap_or(&EMPTY),
        }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match self {
            Index::Hash(m) => m.len(),
            Index::BTree(m) => m.len(),
        }
    }
}

/// An in-memory table: schema, compressed rows, and secondary indexes keyed
/// by column name.
#[derive(Debug, Clone)]
pub struct Table {
    pub schema: TableSchema,
    rows: Vec<CompressedRow>,
    indexes: HashMap<String, Index>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Table { schema, rows: Vec::new(), indexes: HashMap::new() }
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn width(&self) -> usize {
        self.schema.columns.len()
    }

    /// Insert a dense row; maintains all indexes. The row must have exactly
    /// one value per column.
    pub fn insert(&mut self, vals: &[Value]) -> Result<()> {
        if vals.len() != self.width() {
            return plan_err(format!(
                "table {}: insert arity {} != column count {}",
                self.schema.name,
                vals.len(),
                self.width()
            ));
        }
        let row_id = self.rows.len() as u32;
        for (col, index) in &mut self.indexes {
            let ci = self.schema.columns.iter().position(|c| &c.name == col).unwrap();
            index.insert(vals[ci].clone(), row_id);
        }
        self.rows.push(CompressedRow::from_values(vals));
        Ok(())
    }

    /// Bulk insert without per-row arity error formatting overhead.
    pub fn insert_many<I: IntoIterator<Item = Vec<Value>>>(&mut self, rows: I) -> Result<()> {
        for r in rows {
            self.insert(&r)?;
        }
        Ok(())
    }

    /// Create (or rebuild) an index on `column`.
    pub fn create_index(&mut self, column: &str, kind: IndexKind) -> Result<()> {
        let lower = column.to_ascii_lowercase();
        let Some(ci) = self.schema.column_index(&lower) else {
            return plan_err(format!("no column {column} in table {}", self.schema.name));
        };
        let mut index = Index::new(kind);
        for (row_id, row) in self.rows.iter().enumerate() {
            index.insert(row.get(ci), row_id as u32);
        }
        self.indexes.insert(lower, index);
        Ok(())
    }

    pub fn index_on(&self, column: &str) -> Option<&Index> {
        self.indexes.get(&column.to_ascii_lowercase())
    }

    /// The table's index definitions (column, kind), sorted by column name —
    /// what a snapshot needs to rebuild the indexes on load.
    pub fn index_specs(&self) -> Vec<(String, IndexKind)> {
        let mut specs: Vec<(String, IndexKind)> = self
            .indexes
            .iter()
            .map(|(col, idx)| {
                let kind = match idx {
                    Index::Hash(_) => IndexKind::Hash,
                    Index::BTree(_) => IndexKind::BTree,
                };
                (col.clone(), kind)
            })
            .collect();
        specs.sort_by(|a, b| a.0.cmp(&b.0));
        specs
    }

    pub fn rows(&self) -> &[CompressedRow] {
        &self.rows
    }

    /// Dense copy of row `row_id`.
    pub fn row_values(&self, row_id: u32) -> Vec<Value> {
        self.rows[row_id as usize].decompress(self.width())
    }

    /// Overwrite one cell of an existing row, maintaining indexes. Used by
    /// incremental RDF inserts (e.g. promoting a direct value to a
    /// multi-valued lid).
    pub fn update_cell(&mut self, row_id: u32, col: usize, value: Value) -> Result<()> {
        let Some(row) = self.rows.get(row_id as usize) else {
            return plan_err(format!("row {row_id} out of range in table {}", self.schema.name));
        };
        if col >= self.width() {
            return plan_err(format!("column {col} out of range in table {}", self.schema.name));
        }
        let mut vals = row.decompress(self.width());
        let old = std::mem::replace(&mut vals[col], value.clone());
        let col_name = self.schema.columns[col].name.clone();
        if let Some(index) = self.indexes.get_mut(&col_name) {
            index.remove(&old, row_id);
            index.insert(value, row_id);
        }
        self.rows[row_id as usize] = CompressedRow::from_values(&vals);
        Ok(())
    }

    /// Remove row `row_id`, maintaining all indexes. The last row is swapped
    /// into the vacated slot (`Vec::swap_remove`), so the *last* row's id
    /// changes to `row_id` — callers resolving several ids must re-probe an
    /// index after each delete rather than batch-resolve up front. Returns
    /// the removed row's values.
    pub fn delete_row(&mut self, row_id: u32) -> Result<Vec<Value>> {
        let n = self.rows.len();
        if row_id as usize >= n {
            return plan_err(format!("row {row_id} out of range in table {}", self.schema.name));
        }
        let removed = self.rows[row_id as usize].decompress(self.width());
        let last = (n - 1) as u32;
        for (col, index) in &mut self.indexes {
            let ci = self.schema.columns.iter().position(|c| &c.name == col).unwrap();
            index.remove(&removed[ci], row_id);
        }
        if row_id != last {
            // The moved row keeps its values but changes id: reindex it.
            let moved = self.rows[last as usize].decompress(self.width());
            for (col, index) in &mut self.indexes {
                let ci = self.schema.columns.iter().position(|c| &c.name == col).unwrap();
                index.remove(&moved[ci], last);
                index.insert(moved[ci].clone(), row_id);
            }
        }
        self.rows.swap_remove(row_id as usize);
        Ok(removed)
    }

    /// Add `n` new nullable columns (used by the §2.3 NULL experiment and by
    /// dynamic layouts). Existing compressed rows read as NULL in the new
    /// columns at zero storage cost until rewritten.
    pub fn widen(&mut self, new_columns: Vec<(String, SqlType)>) {
        for (name, ty) in new_columns {
            self.schema.columns.push(ColumnDef { name: name.to_ascii_lowercase(), ty });
        }
    }

    /// Like [`Table::widen`], but rewrites every stored row to the new
    /// width so the presence bitmaps physically cover the new columns —
    /// mirroring what a row-store pays after ALTER TABLE + reorg. This is
    /// what the paper's §2.3 NULL-storage experiment measures.
    pub fn widen_rewritten(&mut self, new_columns: Vec<(String, SqlType)>) {
        self.widen(new_columns);
        let width = self.width();
        for row in &mut self.rows {
            let vals = row.decompress(width);
            *row = CompressedRow::from_values(&vals);
        }
    }

    /// Approximate storage footprint of the table's rows in bytes,
    /// reflecting null suppression.
    pub fn storage_bytes(&self) -> usize {
        self.rows.iter().map(CompressedRow::storage_bytes).sum()
    }

    /// Fraction of cells that are NULL (statistic reported in §2.3).
    pub fn null_fraction(&self) -> f64 {
        if self.rows.is_empty() || self.width() == 0 {
            return 0.0;
        }
        let total = self.rows.len() * self.width();
        let non_null: usize = self.rows.iter().map(CompressedRow::non_null_count).sum();
        (total - non_null) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![("a".into(), SqlType::Int), ("b".into(), SqlType::Text)],
        )
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = Table::new(schema());
        t.insert(&[Value::Int(1), Value::str("x")]).unwrap();
        t.insert(&[Value::Int(2), Value::Null]).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row_values(0), vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.row_values(1), vec![Value::Int(2), Value::Null]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(schema());
        assert!(t.insert(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn index_lookup_after_and_before_build() {
        let mut t = Table::new(schema());
        t.insert(&[Value::Int(1), Value::str("x")]).unwrap();
        t.create_index("a", IndexKind::Hash).unwrap();
        t.insert(&[Value::Int(1), Value::str("y")]).unwrap();
        t.insert(&[Value::Int(2), Value::str("z")]).unwrap();
        let idx = t.index_on("a").unwrap();
        assert_eq!(idx.lookup(&Value::Int(1)), &[0, 1]);
        assert_eq!(idx.lookup(&Value::Int(2)), &[2]);
        assert_eq!(idx.lookup(&Value::Int(9)), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn null_keys_not_indexed() {
        let mut t = Table::new(schema());
        t.insert(&[Value::Null, Value::str("x")]).unwrap();
        t.create_index("a", IndexKind::BTree).unwrap();
        assert_eq!(t.index_on("a").unwrap().distinct_keys(), 0);
        assert_eq!(t.index_on("a").unwrap().lookup(&Value::Null), &[] as &[u32]);
    }

    #[test]
    fn widen_reads_null_and_costs_nothing() {
        let mut t = Table::new(schema());
        t.insert(&[Value::Int(1), Value::str("x")]).unwrap();
        let before = t.storage_bytes();
        t.widen(vec![("c".into(), SqlType::Text), ("d".into(), SqlType::Int)]);
        assert_eq!(t.width(), 4);
        assert_eq!(t.row_values(0)[2], Value::Null);
        assert_eq!(t.storage_bytes(), before);
    }

    #[test]
    fn null_fraction() {
        let mut t = Table::new(schema());
        t.insert(&[Value::Int(1), Value::Null]).unwrap();
        t.insert(&[Value::Null, Value::Null]).unwrap();
        assert!((t.null_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn update_cell_maintains_index() {
        let mut t = Table::new(schema());
        t.insert(&[Value::Int(1), Value::str("x")]).unwrap();
        t.insert(&[Value::Int(2), Value::str("y")]).unwrap();
        t.create_index("a", IndexKind::Hash).unwrap();
        t.update_cell(0, 0, Value::Int(9)).unwrap();
        {
            let idx = t.index_on("a").unwrap();
            assert_eq!(idx.lookup(&Value::Int(1)), &[] as &[u32]);
            assert_eq!(idx.lookup(&Value::Int(9)), &[0]);
        }
        assert_eq!(t.row_values(0), vec![Value::Int(9), Value::str("x")]);
        // updating to NULL removes from index
        t.update_cell(0, 0, Value::Null).unwrap();
        let idx = t.index_on("a").unwrap();
        assert_eq!(idx.distinct_keys(), 1);
        assert_eq!(idx.lookup(&Value::Int(9)), &[] as &[u32]);
    }

    #[test]
    fn update_cell_out_of_range_rejected() {
        let mut t = Table::new(schema());
        t.insert(&[Value::Int(1), Value::str("x")]).unwrap();
        assert!(t.update_cell(5, 0, Value::Null).is_err());
        assert!(t.update_cell(0, 9, Value::Null).is_err());
    }

    #[test]
    fn delete_row_swaps_last_and_fixes_indexes() {
        let mut t = Table::new(schema());
        t.insert(&[Value::Int(1), Value::str("x")]).unwrap();
        t.insert(&[Value::Int(2), Value::str("y")]).unwrap();
        t.insert(&[Value::Int(3), Value::str("z")]).unwrap();
        t.create_index("a", IndexKind::Hash).unwrap();
        t.create_index("b", IndexKind::BTree).unwrap();

        // Delete the middle row: row 2 moves into slot 1.
        let removed = t.delete_row(1).unwrap();
        assert_eq!(removed, vec![Value::Int(2), Value::str("y")]);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.row_values(1), vec![Value::Int(3), Value::str("z")]);
        let idx = t.index_on("a").unwrap();
        assert_eq!(idx.lookup(&Value::Int(2)), &[] as &[u32]);
        assert_eq!(idx.lookup(&Value::Int(3)), &[1]);
        assert_eq!(t.index_on("b").unwrap().lookup(&Value::str("z")), &[1]);

        // Delete the (new) last row: no swap happens.
        t.delete_row(1).unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.index_on("a").unwrap().lookup(&Value::Int(3)), &[] as &[u32]);
        assert_eq!(t.index_on("a").unwrap().lookup(&Value::Int(1)), &[0]);

        assert!(t.delete_row(5).is_err());
    }

    #[test]
    fn unknown_index_column_rejected() {
        let mut t = Table::new(schema());
        assert!(t.create_index("zzz", IndexKind::Hash).is_err());
    }
}
