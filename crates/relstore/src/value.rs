//! Runtime values and SQL comparison semantics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Declared column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    Bool,
    Int,
    Double,
    Text,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SqlType::Bool => "BOOLEAN",
            SqlType::Int => "BIGINT",
            SqlType::Double => "DOUBLE",
            SqlType::Text => "TEXT",
        };
        f.write_str(s)
    }
}

/// A runtime SQL value.
///
/// Text uses `Arc<str>` so that wide RDF rows can be cloned during query
/// execution without copying string bytes.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(Arc<str>),
}

impl Value {
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOLEAN",
            Value::Int(_) => "BIGINT",
            Value::Double(_) => "DOUBLE",
            Value::Str(_) => "TEXT",
        }
    }

    /// Numeric view used by arithmetic and cross-type comparison.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes, used by the NULL-compression
    /// storage experiment (§2.3 of the paper).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            _ => 0,
        }
    }

    /// SQL `=` with three-valued logic: `None` when either side is NULL.
    /// Numeric types compare by value across Int/Double; mismatched
    /// non-numeric types are simply unequal.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            (Value::Str(a), Value::Str(b)) => Some(a == b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x == y),
                _ => Some(false),
            },
        }
    }

    /// SQL ordering comparison with three-valued logic: `None` when either
    /// side is NULL or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// Total order used by ORDER BY, B-tree indexes and DISTINCT: NULLs
    /// first, then booleans, numerics (Int and Double interleaved by value),
    /// then text.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Double(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
                (a, b) => {
                    let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                    x.total_cmp(&y)
                }
            },
            o => o,
        }
    }
}

/// Identity equality used for index keys, DISTINCT and hash-join buckets.
/// Int and Double are unified through their f64 value so `1 = 1.0` groups
/// together; NaN equals itself (total semantics for storage purposes).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                _ => false,
            },
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Double(1.0)), Some(true));
        assert_eq!(Value::str("a").sql_eq(&Value::str("b")), Some(false));
        assert_eq!(Value::str("1").sql_eq(&Value::Int(1)), Some(false));
    }

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Double(2.5)), Some(Ordering::Less));
        assert_eq!(Value::str("b").sql_cmp(&Value::str("a")), Some(Ordering::Greater));
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn identity_eq_unifies_int_double() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(3)), h(&Value::Double(3.0)));
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vals = [Value::str("z"),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Double(1.5)];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Double(1.5));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::str("z"));
    }

    #[test]
    fn heap_bytes_counts_strings() {
        assert_eq!(Value::str("abcd").heap_bytes(), 4);
        assert_eq!(Value::Int(1).heap_bytes(), 0);
    }
}
