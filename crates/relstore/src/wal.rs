//! The write-ahead log: CRC32-framed, length-prefixed transaction records.
//!
//! ## On-disk format
//!
//! ```text
//! file   := magic frame*
//! magic  := "RSWALv1\0"                 (8 bytes)
//! frame  := len:u32le crc:u32le payload (crc = CRC32(payload))
//! payload:= nops:u32le op*              (one frame = one committed txn)
//! op     := 0x01 schema                       -- CREATE TABLE
//!         | 0x02 table:str column:str kind:u8 -- CREATE INDEX
//!         | 0x03 table:str nrows:u32 width:u32 value*  -- INSERT
//!         | 0x04 table:str row:u32 col:u32 value       -- UPDATE one cell
//!         | 0x05 table:str row:u32                     -- DELETE one row
//! ```
//!
//! ## Recovery invariant
//!
//! A frame is *committed* iff its length prefix, CRC and payload decode all
//! validate. Recovery replays committed frames in order and **truncates the
//! log at the first invalid byte** — a short header, a length running past
//! EOF, a CRC mismatch, or an undecodable payload all mark the torn tail a
//! crash mid-append leaves behind. Replaying a prefix of committed frames
//! always yields the state after a prefix of committed transactions, which
//! is exactly the guarantee the fault-injection suite checks. Recovery never
//! panics on arbitrary bytes.

use std::path::Path;

use crate::codec::{
    crc32, put_schema, put_str, put_u32, put_u8, put_value, Reader,
};
use crate::error::{Error, Result};
use crate::io::{FaultFile, FaultHandle};
use crate::table::{IndexKind, TableSchema};
use crate::value::Value;

pub const WAL_MAGIC: &[u8; 8] = b"RSWALv1\0";

/// Upper bound on a single frame payload; a length prefix above this is
/// treated as corruption rather than an allocation request.
const MAX_FRAME: u32 = 1 << 28; // 256 MiB

const OP_CREATE_TABLE: u8 = 1;
const OP_CREATE_INDEX: u8 = 2;
const OP_INSERT_ROWS: u8 = 3;
const OP_UPDATE_CELL: u8 = 4;
const OP_DELETE_ROW: u8 = 5;

/// One logical mutation, as recovered from the log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    CreateTable(TableSchema),
    CreateIndex { table: String, column: String, kind: IndexKind },
    InsertRows { table: String, rows: Vec<Vec<Value>> },
    UpdateCell { table: String, row_id: u32, col: u32, value: Value },
    /// Remove one row with `swap_remove` semantics (the last row moves into
    /// the vacated id) — replay is deterministic because the applier uses
    /// the same primitive.
    DeleteRow { table: String, row_id: u32 },
}

// ---------------------------------------------------------------------------
// Op encoding (called by the Database mutation paths)
// ---------------------------------------------------------------------------

pub fn encode_create_table(buf: &mut Vec<u8>, schema: &TableSchema) {
    put_u8(buf, OP_CREATE_TABLE);
    put_schema(buf, schema);
}

pub fn encode_create_index(buf: &mut Vec<u8>, table: &str, column: &str, kind: IndexKind) {
    put_u8(buf, OP_CREATE_INDEX);
    put_str(buf, table);
    put_str(buf, column);
    crate::codec::put_index_kind(buf, kind);
}

/// Encode an insert of dense rows (all `width` values per row).
pub fn encode_insert_rows(buf: &mut Vec<u8>, table: &str, width: usize, rows: &[Vec<Value>]) {
    put_u8(buf, OP_INSERT_ROWS);
    put_str(buf, table);
    put_u32(buf, rows.len() as u32);
    put_u32(buf, width as u32);
    for row in rows {
        for v in row {
            put_value(buf, v);
        }
    }
}

pub fn encode_update_cell(buf: &mut Vec<u8>, table: &str, row_id: u32, col: u32, value: &Value) {
    put_u8(buf, OP_UPDATE_CELL);
    put_str(buf, table);
    put_u32(buf, row_id);
    put_u32(buf, col);
    put_value(buf, value);
}

pub fn encode_delete_row(buf: &mut Vec<u8>, table: &str, row_id: u32) {
    put_u8(buf, OP_DELETE_ROW);
    put_str(buf, table);
    put_u32(buf, row_id);
}

fn decode_op(r: &mut Reader<'_>) -> Result<WalOp> {
    Ok(match r.take_u8()? {
        OP_CREATE_TABLE => WalOp::CreateTable(r.take_schema()?),
        OP_CREATE_INDEX => WalOp::CreateIndex {
            table: r.take_str()?,
            column: r.take_str()?,
            kind: r.take_index_kind()?,
        },
        OP_INSERT_ROWS => {
            let table = r.take_str()?;
            let nrows = r.take_u32()? as usize;
            let width = r.take_u32()? as usize;
            if width > (1 << 20) {
                return Err(Error::Corrupt(format!("absurd row width {width}")));
            }
            let mut rows = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(width);
                for _ in 0..width {
                    row.push(r.take_value()?);
                }
                rows.push(row);
            }
            WalOp::InsertRows { table, rows }
        }
        OP_UPDATE_CELL => WalOp::UpdateCell {
            table: r.take_str()?,
            row_id: r.take_u32()?,
            col: r.take_u32()?,
            value: r.take_value()?,
        },
        OP_DELETE_ROW => WalOp::DeleteRow { table: r.take_str()?, row_id: r.take_u32()? },
        t => return Err(Error::Corrupt(format!("unknown WAL op tag {t}"))),
    })
}

fn decode_frame(payload: &[u8]) -> Result<Vec<WalOp>> {
    let mut r = Reader::new(payload);
    let nops = r.take_u32()? as usize;
    let mut ops = Vec::with_capacity(nops.min(1 << 20));
    for _ in 0..nops {
        ops.push(decode_op(&mut r)?);
    }
    if r.remaining() != 0 {
        return Err(Error::Corrupt(format!("{} trailing bytes in frame", r.remaining())));
    }
    Ok(ops)
}

// ---------------------------------------------------------------------------
// Recovery (read side)
// ---------------------------------------------------------------------------

/// Result of scanning a WAL file: the committed transactions and the byte
/// length of the valid prefix (where the writer should resume).
pub struct WalRecovery {
    pub txns: Vec<Vec<WalOp>>,
    /// Validated length in bytes, *including* the magic. Zero when the file
    /// is missing or its magic is unreadable (the writer rewrites it).
    pub valid_len: u64,
}

/// Scan `path`, tolerating a torn tail: committed frames up to the first
/// invalid byte are returned, everything after is ignored (and later
/// truncated by [`WalWriter::open`]). Never panics on arbitrary bytes; a
/// missing file reads as an empty log. The read goes through the fault
/// layer, so a short *read* (bad sector under the tail) degrades exactly
/// like a torn write: recovery keeps the readable committed prefix.
pub fn recover(path: &Path, faults: &FaultHandle) -> Result<WalRecovery> {
    let bytes = match crate::io::read_file(path, faults) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalRecovery { txns: Vec::new(), valid_len: 0 })
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // Unreadable header: treat the whole file as a torn tail.
        return Ok(WalRecovery { txns: Vec::new(), valid_len: 0 });
    }
    let mut txns = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        if bytes.len() - pos < 8 {
            break; // short header = torn tail
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_FRAME || bytes.len() - pos - 8 < len as usize {
            break; // length runs past EOF (or is garbage)
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            break; // torn or flipped payload
        }
        match decode_frame(payload) {
            Ok(ops) => txns.push(ops),
            Err(_) => break, // CRC-valid but undecodable: stop conservatively
        }
        pos += 8 + len as usize;
    }
    Ok(WalRecovery { txns, valid_len: pos as u64 })
}

// ---------------------------------------------------------------------------
// Append (write side)
// ---------------------------------------------------------------------------

/// Appends committed frames to a WAL file through the fault-injection layer.
pub struct WalWriter {
    file: FaultFile,
    /// File offset up to which frames are known durable (fsynced). Frames
    /// appended but not yet synced — the group-commit window — sit between
    /// `synced` and `file.offset()`.
    synced: u64,
}

impl WalWriter {
    /// Open `path` for appending at `valid_len` (from [`recover`]); torn
    /// bytes past it are truncated. A zero `valid_len` (fresh or headerless
    /// file) rewrites the magic.
    pub fn open(path: &Path, valid_len: u64, faults: FaultHandle) -> std::io::Result<WalWriter> {
        let mut file = FaultFile::open_append(path, valid_len, faults)?;
        if valid_len == 0 {
            file.append(WAL_MAGIC)?;
            file.sync()?;
        }
        let synced = file.offset();
        Ok(WalWriter { file, synced })
    }

    /// Append one transaction frame *without* syncing it: the frame becomes
    /// durable only at the next [`WalWriter::sync`]. Group commit appends
    /// one frame per request, then pays one fsync for the whole group. On
    /// failure the whole unsynced tail — this frame *and* any earlier
    /// unsynced frames of the group — is truncated away, so an aborted
    /// group can never be resurrected by recovery.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(payload));
        frame.extend_from_slice(payload);
        if let Err(e) = self.file.append(&frame) {
            self.file.truncate_to(self.synced);
            return Err(e);
        }
        Ok(())
    }

    /// Fsync every appended frame. On failure the unsynced tail is
    /// discarded (truncated back to the last synced boundary) so a
    /// crash-free restart cannot resurrect transactions reported as failed.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if let Err(e) = self.file.sync() {
            self.file.truncate_to(self.synced);
            return Err(e);
        }
        self.synced = self.file.offset();
        Ok(())
    }

    /// Durably append one transaction: frame header + payload, then fsync.
    /// On failure the file is rolled back to the previous frame boundary
    /// (best effort) and the caller must degrade to read-only.
    pub fn commit(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.append(payload)?;
        self.sync()
    }

    /// Bytes durably committed so far (including the magic).
    pub fn len(&self) -> u64 {
        self.synced
    }

    pub fn is_empty(&self) -> bool {
        self.len() <= WAL_MAGIC.len() as u64
    }
}

/// Build a one-transaction payload from encoded ops.
pub fn frame_payload(nops: u32, ops: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + ops.len());
    put_u32(&mut payload, nops);
    payload.extend_from_slice(ops);
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::no_faults;
    use crate::value::SqlType;

    fn tmp_wal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("relstore-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.0")
    }

    fn sample_ops() -> Vec<u8> {
        let mut ops = Vec::new();
        encode_create_table(
            &mut ops,
            &TableSchema::new("t", vec![("a".into(), SqlType::Int)]),
        );
        encode_insert_rows(&mut ops, "t", 1, &[vec![Value::Int(7)]]);
        ops
    }

    #[test]
    fn roundtrip_two_txns() {
        let path = tmp_wal("roundtrip");
        let mut w = WalWriter::open(&path, 0, no_faults()).unwrap();
        w.commit(&frame_payload(2, &sample_ops())).unwrap();
        let mut op2 = Vec::new();
        encode_update_cell(&mut op2, "t", 0, 0, &Value::Int(9));
        w.commit(&frame_payload(1, &op2)).unwrap();
        drop(w);

        let rec = recover(&path, &no_faults()).unwrap();
        assert_eq!(rec.txns.len(), 2);
        assert_eq!(rec.txns[0].len(), 2);
        assert_eq!(
            rec.txns[1][0],
            WalOp::UpdateCell { table: "t".into(), row_id: 0, col: 0, value: Value::Int(9) }
        );
        assert_eq!(rec.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_truncates_to_committed_prefix() {
        let path = tmp_wal("torn");
        let mut w = WalWriter::open(&path, 0, no_faults()).unwrap();
        w.commit(&frame_payload(2, &sample_ops())).unwrap();
        let committed_len = w.len();
        w.commit(&frame_payload(2, &sample_ops())).unwrap();
        drop(w);

        // Truncate into the middle of the second frame.
        let full = std::fs::read(&path).unwrap();
        for cut in committed_len as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let rec = recover(&path, &no_faults()).unwrap();
            assert_eq!(rec.txns.len(), 1, "cut at {cut}");
            assert_eq!(rec.valid_len, committed_len, "cut at {cut}");
        }
    }

    #[test]
    fn delete_row_op_roundtrips() {
        let path = tmp_wal("delete-op");
        let mut w = WalWriter::open(&path, 0, no_faults()).unwrap();
        let mut ops = Vec::new();
        encode_delete_row(&mut ops, "t", 3);
        w.commit(&frame_payload(1, &ops)).unwrap();
        drop(w);
        let rec = recover(&path, &no_faults()).unwrap();
        assert_eq!(rec.txns[0][0], WalOp::DeleteRow { table: "t".into(), row_id: 3 });
    }

    #[test]
    fn group_commit_appends_then_one_sync() {
        let path = tmp_wal("group");
        let mut w = WalWriter::open(&path, 0, no_faults()).unwrap();
        let before = w.len();
        w.append(&frame_payload(2, &sample_ops())).unwrap();
        let mut op2 = Vec::new();
        encode_update_cell(&mut op2, "t", 0, 0, &Value::Int(9));
        w.append(&frame_payload(1, &op2)).unwrap();
        // Unsynced frames are not yet counted as committed.
        assert_eq!(w.len(), before);
        w.sync().unwrap();
        assert!(w.len() > before);
        drop(w);
        let rec = recover(&path, &no_faults()).unwrap();
        assert_eq!(rec.txns.len(), 2);
    }

    #[test]
    fn failed_group_sync_discards_every_unsynced_frame() {
        use crate::io::ScriptedFaults;
        let path = tmp_wal("group-sync-fault");
        {
            let mut w = WalWriter::open(&path, 0, no_faults()).unwrap();
            w.commit(&frame_payload(2, &sample_ops())).unwrap();
        }
        let committed = std::fs::metadata(&path).unwrap().len();
        // Reopen with the next sync scripted to fail; both appended frames
        // of the doomed group must vanish.
        let faults = ScriptedFaults::new().fail_sync(0).into_handle();
        let mut w = WalWriter::open(&path, committed, faults).unwrap();
        w.append(&frame_payload(2, &sample_ops())).unwrap();
        w.append(&frame_payload(2, &sample_ops())).unwrap();
        assert!(w.sync().is_err());
        drop(w);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
        let rec = recover(&path, &no_faults()).unwrap();
        assert_eq!(rec.txns.len(), 1, "the aborted group must not resurrect");
    }

    #[test]
    fn missing_and_headerless_files_read_empty() {
        let path = tmp_wal("missing");
        assert_eq!(recover(&path, &no_faults()).unwrap().txns.len(), 0);
        std::fs::write(&path, b"garbage").unwrap();
        let rec = recover(&path, &no_faults()).unwrap();
        assert_eq!(rec.txns.len(), 0);
        assert_eq!(rec.valid_len, 0);
    }
}
