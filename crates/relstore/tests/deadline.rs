//! Wall-clock query deadline (`Database::set_deadline`), checked at the same
//! execution sites as the row budget and surfaced as `Error::Timeout` —
//! distinct from the budget's `Error::LimitExceeded`.

use std::time::Duration;

use relstore::{Database, Error, Value};

fn populated() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INT, v TEXT)").unwrap();
    let rows: Vec<Vec<Value>> =
        (0..20_000).map(|i| vec![Value::Int(i), Value::str(format!("v{i}"))]).collect();
    db.insert_rows("t", rows).unwrap();
    db
}

#[test]
fn zero_deadline_times_out() {
    let mut db = populated();
    db.set_deadline(Some(Duration::ZERO));
    let err = db
        .query("SELECT a.k FROM t a JOIN t b ON a.k = b.k WHERE a.k < 100")
        .unwrap_err();
    assert_eq!(err, Error::Timeout);
}

#[test]
fn generous_deadline_does_not_fire() {
    let mut db = populated();
    db.set_deadline(Some(Duration::from_secs(3600)));
    let rel = db.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::Int(20_000)]]);
}

#[test]
fn deadline_clears() {
    let mut db = populated();
    db.set_deadline(Some(Duration::ZERO));
    assert_eq!(db.query("SELECT count(*) FROM t"), Err(Error::Timeout));
    db.set_deadline(None);
    assert!(db.query("SELECT count(*) FROM t").is_ok());
}

#[test]
fn timeout_is_distinct_from_row_budget() {
    let mut db = populated();
    db.set_row_budget(Some(10));
    let err = db.query("SELECT k FROM t").unwrap_err();
    assert_eq!(err, Error::LimitExceeded);
    db.set_row_budget(None);
    db.set_deadline(Some(Duration::ZERO));
    let err = db.query("SELECT k FROM t").unwrap_err();
    assert_eq!(err, Error::Timeout);
}
