//! Crash-recovery property tests under fault injection.
//!
//! The central invariant (DESIGN.md §4.6): for a WAL truncated at **any**
//! byte offset, and for every injected short-write / bit-flip / fsync-error
//! case, `Database::open` either succeeds or degrades to read-only, and the
//! recovered state equals the state after some *prefix* of committed
//! transactions — never a torn half-transaction, never a panic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use relstore::{
    table_schema, Database, Error, FaultHandle, IoFault, SqlType, Value, WriteOutcome,
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Seeded SplitMix64 (same generator the workspace's datagen crate uses),
/// inlined so this test stays dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "relstore-durability-{}-{}-{name}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Canonical dump of the whole database: sorted table names, each table's
/// dense rows in insertion order. Two databases with equal dumps are
/// observably identical to every query.
fn dump(db: &Database) -> Vec<(String, Vec<Vec<Value>>)> {
    db.table_names()
        .into_iter()
        .map(|name| {
            let t = db.table(name).unwrap();
            let rows = (0..t.row_count()).map(|r| t.row_values(r as u32)).collect();
            (name.to_string(), rows)
        })
        .collect()
}

type State = Vec<(String, Vec<Vec<Value>>)>;

/// Build a database at `dir` applying `n_txns` committed transactions, and
/// return the state dump after each commit (index 0 = empty database).
/// Transactions mix DDL, batched inserts and cell updates so every WAL op
/// kind appears in the log.
fn build_history(dir: &Path, n_txns: usize) -> Vec<State> {
    let mut db = Database::open(dir).unwrap();
    let mut states = vec![dump(&db)];
    db.begin_batch();
    db.create_table(table_schema("t", &[("k", SqlType::Int), ("v", SqlType::Text)]))
        .unwrap();
    db.create_index("t", "k", relstore::IndexKind::Hash).unwrap();
    db.commit_batch().unwrap();
    states.push(dump(&db));
    for i in 0..n_txns.saturating_sub(1) {
        db.begin_batch();
        db.insert_rows(
            "t",
            (0..3).map(|j| vec![Value::Int((i * 3 + j) as i64), Value::str(format!("v{i}.{j}"))]),
        )
        .unwrap();
        if i > 0 {
            // Touch an existing row too, so UpdateCell frames interleave.
            db.update_cell("t", (i - 1) as u32, 1, Value::str(format!("upd{i}"))).unwrap();
        }
        db.commit_batch().unwrap();
        states.push(dump(&db));
    }
    drop(db); // crash: no close(), no checkpoint — the WAL carries everything
    states
}

fn assert_is_prefix_state(got: &State, states: &[State], context: &str) {
    assert!(
        states.iter().any(|s| s == got),
        "{context}: recovered state matches no committed prefix"
    );
}

// ---------------------------------------------------------------------------
// Happy path
// ---------------------------------------------------------------------------

#[test]
fn reopen_recovers_everything_without_checkpoint() {
    let dir = fresh_dir("reopen");
    let states = build_history(&dir, 6);
    let db = Database::open(&dir).unwrap();
    assert!(!db.is_read_only());
    assert_eq!(&dump(&db), states.last().unwrap());
}

#[test]
fn checkpoint_rotates_generations_and_prunes() {
    let dir = fresh_dir("checkpoint");
    let mut db = Database::open(&dir).unwrap();
    db.create_table(table_schema("t", &[("k", SqlType::Int)])).unwrap();
    db.insert_rows("t", [vec![Value::Int(1)]]).unwrap();
    db.checkpoint().unwrap();
    db.insert_rows("t", [vec![Value::Int(2)]]).unwrap();
    db.checkpoint().unwrap();
    db.insert_rows("t", [vec![Value::Int(3)]]).unwrap();
    let expect = dump(&db);
    drop(db);

    // Generations 1 and 2 survive (one fallback), generation 0 is pruned.
    assert!(dir.join("snapshot.2").exists());
    assert!(dir.join("wal.2").exists());
    assert!(!dir.join("wal.0").exists());

    let db = Database::open(&dir).unwrap();
    assert_eq!(dump(&db), expect);
}

#[test]
fn close_checkpoints_and_reopen_is_instant_replay_free() {
    let dir = fresh_dir("close");
    let mut db = Database::open(&dir).unwrap();
    db.create_table(table_schema("t", &[("k", SqlType::Int)])).unwrap();
    db.insert_rows("t", [vec![Value::Int(7)]]).unwrap();
    let expect = dump(&db);
    db.close().unwrap();
    let db = Database::open(&dir).unwrap();
    assert_eq!(dump(&db), expect);
}

#[test]
fn sql_statements_are_durable_too() {
    let dir = fresh_dir("sql");
    let mut db = Database::open(&dir).unwrap();
    db.execute("CREATE TABLE person (name TEXT, age INT)").unwrap();
    db.execute("INSERT INTO person VALUES ('ada', 36), ('alan', 41)").unwrap();
    drop(db);
    let db = Database::open(&dir).unwrap();
    let rel = db.query("SELECT name FROM person WHERE age > 40").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::str("alan")]]);
}

// ---------------------------------------------------------------------------
// Torn tails: truncation at every byte offset
// ---------------------------------------------------------------------------

#[test]
fn truncation_at_every_byte_recovers_a_committed_prefix() {
    let dir = fresh_dir("trunc-src");
    let states = build_history(&dir, 5);
    let wal = std::fs::read(dir.join("wal.0")).unwrap();

    let work = fresh_dir("trunc-work");
    let wal_path = work.join("wal.0");
    // Sweep every truncation length, including 0 and the full file. This
    // covers every frame boundary and every mid-frame offset.
    for cut in 0..=wal.len() {
        std::fs::write(&wal_path, &wal[..cut]).unwrap();
        let db = Database::open(&work).unwrap_or_else(|e| {
            panic!("open failed at truncation {cut}: {e}")
        });
        assert_is_prefix_state(&dump(&db), &states, &format!("truncation at {cut}"));
        drop(db);
    }
    // Full file must recover the final state.
    std::fs::write(&wal_path, &wal).unwrap();
    let db = Database::open(&work).unwrap();
    assert_eq!(&dump(&db), states.last().unwrap());
}

#[test]
fn truncated_tail_is_discarded_then_log_grows_cleanly() {
    // After recovery truncates a torn tail, new commits must append at the
    // truncation point and recover correctly — the log never wedges.
    let dir = fresh_dir("regrow");
    let states = build_history(&dir, 4);
    let wal_path = dir.join("wal.0");
    let wal = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &wal[..wal.len() - 3]).unwrap(); // tear last frame

    let mut db = Database::open(&dir).unwrap();
    assert_is_prefix_state(&dump(&db), &states, "after tear");
    db.insert_rows("t", [vec![Value::Int(999), Value::str("post-tear")]]).unwrap();
    let expect = dump(&db);
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(dump(&db), expect);
}

// ---------------------------------------------------------------------------
// Bit flips
// ---------------------------------------------------------------------------

#[test]
fn bit_flip_at_every_wal_byte_recovers_a_committed_prefix() {
    let dir = fresh_dir("flip-src");
    let states = build_history(&dir, 4);
    let wal = std::fs::read(dir.join("wal.0")).unwrap();

    let work = fresh_dir("flip-work");
    let wal_path = work.join("wal.0");
    let mut rng = Rng(0xdb2_2013);
    for byte in 0..wal.len() {
        let mut dirty = wal.clone();
        dirty[byte] ^= 1 << rng.below(8); // seeded bit choice per byte
        std::fs::write(&wal_path, &dirty).unwrap();
        match Database::open(&work) {
            Ok(db) => assert_is_prefix_state(&dump(&db), &states, &format!("flip at {byte}")),
            Err(e) => panic!("open must not fail on a flipped WAL byte ({byte}): {e}"),
        }
    }
}

#[test]
fn corrupt_newest_snapshot_falls_back_one_generation() {
    let dir = fresh_dir("snapfall");
    let mut db = Database::open(&dir).unwrap();
    db.create_table(table_schema("t", &[("k", SqlType::Int)])).unwrap();
    db.insert_rows("t", [vec![Value::Int(1)]]).unwrap();
    db.checkpoint().unwrap(); // snapshot.1
    db.insert_rows("t", [vec![Value::Int(2)]]).unwrap();
    let state_before_ckpt2 = dump(&db);
    db.checkpoint().unwrap(); // snapshot.2
    db.insert_rows("t", [vec![Value::Int(3)]]).unwrap();
    drop(db);

    // Damage snapshot.2: recovery must fall back to snapshot.1 + wal.1,
    // whose end state equals the state at the second checkpoint.
    let snap2 = dir.join("snapshot.2");
    let mut bytes = std::fs::read(&snap2).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap2, &bytes).unwrap();

    let db = Database::open(&dir).unwrap();
    assert_eq!(dump(&db), state_before_ckpt2);
}

#[test]
fn all_snapshots_corrupt_is_an_error_not_a_panic() {
    let dir = fresh_dir("snapdead");
    let mut db = Database::open(&dir).unwrap();
    db.create_table(table_schema("t", &[("k", SqlType::Int)])).unwrap();
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    drop(db);
    for entry in std::fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.file_name().unwrap().to_str().unwrap().starts_with("snapshot.") {
            std::fs::write(&p, b"RSNAPv1\0 utterly broken").unwrap();
        }
    }
    match Database::open(&dir) {
        Err(Error::Corrupt(_)) => {}
        Err(other) => panic!("expected Corrupt error, got {other}"),
        Ok(_) => panic!("expected Corrupt error, got a database"),
    }
}

// ---------------------------------------------------------------------------
// Injected write faults: short writes, outright failures, fsync errors
// ---------------------------------------------------------------------------

/// Fails the `nth` write (1-based) across the database's whole lifetime,
/// optionally letting a prefix of the bytes through (a torn write).
struct FailNthWrite {
    countdown: AtomicUsize,
    keep: Option<usize>,
}

impl FailNthWrite {
    fn nth(n: usize, keep: Option<usize>) -> FaultHandle {
        Arc::new(FailNthWrite { countdown: AtomicUsize::new(n), keep })
    }
}

impl IoFault for FailNthWrite {
    fn on_write(&self, _offset: u64, _len: usize) -> WriteOutcome {
        // Saturating decrement: fire exactly once when the counter hits 1.
        let mut cur = self.countdown.load(Ordering::SeqCst);
        loop {
            if cur == 0 {
                return WriteOutcome::Full;
            }
            match self.countdown.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        if cur == 1 {
            match self.keep {
                Some(k) => WriteOutcome::Short(k),
                None => WriteOutcome::Fail,
            }
        } else {
            WriteOutcome::Full
        }
    }
}

/// Fails every fsync after the first `ok` calls.
struct FailSyncAfter {
    countdown: AtomicUsize,
}

impl IoFault for FailSyncAfter {
    fn on_sync(&self) -> std::io::Result<()> {
        let mut cur = self.countdown.load(Ordering::SeqCst);
        loop {
            if cur == 0 {
                return Err(std::io::Error::other("injected fsync failure"));
            }
            match self.countdown.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return Ok(()),
                Err(now) => cur = now,
            }
        }
    }
}

/// One mutation in a fault-driven schedule.
type Step = Box<dyn Fn(&mut Database) -> relstore::Result<()>>;

/// Drive a fixed transaction schedule against a faulty database; return the
/// dumps after each *successful* commit and whether a failure was observed.
fn drive_with_faults(dir: &Path, faults: FaultHandle) -> (Vec<State>, bool) {
    let mut db = match Database::open_with_faults(dir, faults) {
        Ok(db) => db,
        Err(_) => return (Vec::new(), true),
    };
    let mut committed = vec![dump(&db)];
    let mut failed = false;
    let schedule: Vec<Step> = vec![
        Box::new(|db| {
            db.create_table(table_schema("t", &[("k", SqlType::Int), ("v", SqlType::Text)]))
        }),
        Box::new(|db| db.insert_rows("t", [vec![Value::Int(1), Value::str("a")]]).map(|_| ())),
        Box::new(|db| db.insert_rows("t", [vec![Value::Int(2), Value::str("b")]]).map(|_| ())),
        Box::new(|db| db.update_cell("t", 0, 1, Value::str("a2"))),
        Box::new(|db| db.insert_rows("t", [vec![Value::Int(3), Value::str("c")]]).map(|_| ())),
    ];
    for step in schedule {
        match step(&mut db) {
            Ok(()) => committed.push(dump(&db)),
            Err(_) => {
                failed = true;
                // After a WAL write failure the database must be read-only
                // and refuse further mutations with Error::ReadOnly.
                assert!(db.is_read_only(), "write failure must degrade to read-only");
                assert_eq!(
                    db.insert_rows("t", [vec![Value::Int(9), Value::str("z")]]),
                    Err(Error::ReadOnly)
                );
                break;
            }
        }
    }
    (committed, failed)
}

#[test]
fn short_writes_at_every_position_leave_a_committed_prefix_on_disk() {
    // For each n, fail the nth write short (keeping 0, 1 or 5 bytes), then
    // reopen cleanly and check the recovered state is a committed prefix.
    for keep in [0usize, 1, 5] {
        let mut saw_failure = false;
        for n in 1..20 {
            let dir = fresh_dir(&format!("short-{keep}-{n}"));
            let (committed, failed) =
                drive_with_faults(&dir, FailNthWrite::nth(n, Some(keep)));
            saw_failure |= failed;
            let db = Database::open(&dir)
                .unwrap_or_else(|e| panic!("reopen after short write {n}/{keep}: {e}"));
            let got = dump(&db);
            if committed.is_empty() {
                // The very first write (the WAL magic) failed: empty store.
                assert!(got.is_empty());
            } else {
                assert_is_prefix_state(&got, &committed, &format!("short write {n} keep {keep}"));
            }
        }
        assert!(saw_failure, "fault schedule never fired for keep={keep}");
    }
}

#[test]
fn failed_writes_at_every_position_leave_a_committed_prefix_on_disk() {
    let mut saw_failure = false;
    for n in 1..20 {
        let dir = fresh_dir(&format!("fail-{n}"));
        let (committed, failed) = drive_with_faults(&dir, FailNthWrite::nth(n, None));
        saw_failure |= failed;
        let db = Database::open(&dir).unwrap();
        let got = dump(&db);
        if !committed.is_empty() {
            assert_is_prefix_state(&got, &committed, &format!("failed write {n}"));
        }
    }
    assert!(saw_failure);
}

#[test]
fn fsync_failure_degrades_to_read_only_with_committed_prefix() {
    let mut saw_failure = false;
    for ok_syncs in 0..10 {
        let dir = fresh_dir(&format!("fsync-{ok_syncs}"));
        let faults: FaultHandle =
            Arc::new(FailSyncAfter { countdown: AtomicUsize::new(ok_syncs) });
        let (committed, failed) = drive_with_faults(&dir, faults);
        saw_failure |= failed;
        let db = Database::open(&dir).unwrap();
        let got = dump(&db);
        if !committed.is_empty() {
            assert_is_prefix_state(&got, &committed, &format!("fsync after {ok_syncs}"));
        }
    }
    assert!(saw_failure);
}

#[test]
fn reads_still_work_in_read_only_mode() {
    let dir = fresh_dir("ro-reads");
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (k INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        drop(db);
    }
    // Fail the first write of the new session (the torn-tail truncate is a
    // set_len, so the first *write* is the next commit's frame).
    let mut db = Database::open_with_faults(&dir, FailNthWrite::nth(1, None)).unwrap();
    assert!(db.execute("INSERT INTO t VALUES (3)").is_err());
    assert!(db.is_read_only());
    let rel = db.query("SELECT k FROM t ORDER BY k").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    // Checkpoint and close must refuse politely, not corrupt state.
    assert_eq!(db.checkpoint(), Err(Error::ReadOnly));
    db.close().unwrap();
}

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

#[test]
fn uncommitted_batch_is_invisible_after_crash() {
    let dir = fresh_dir("batch-crash");
    let mut db = Database::open(&dir).unwrap();
    db.create_table(table_schema("t", &[("k", SqlType::Int)])).unwrap();
    db.insert_rows("t", [vec![Value::Int(1)]]).unwrap();
    let committed = dump(&db);
    db.begin_batch();
    db.insert_rows("t", [vec![Value::Int(2)]]).unwrap();
    db.insert_rows("t", [vec![Value::Int(3)]]).unwrap();
    drop(db); // crash before commit_batch: the frame was never written

    let db = Database::open(&dir).unwrap();
    assert_eq!(dump(&db), committed);
}

// ---------------------------------------------------------------------------
// Injected read faults: short reads and outright failures during recovery
// ---------------------------------------------------------------------------

#[test]
fn short_wal_read_at_every_byte_recovers_the_readable_prefix() {
    // A WAL whose tail sits on a bad sector reads short; recovery must treat
    // the readable prefix exactly like a torn tail: a committed prefix state,
    // and a writable database that resumes appending at the readable end.
    let dir = fresh_dir("short-read-src");
    let states = build_history(&dir, 5);
    let wal_len = std::fs::metadata(dir.join("wal.0")).unwrap().len() as usize;
    let wal = std::fs::read(dir.join("wal.0")).unwrap();

    for cut in 0..=wal_len {
        let work = fresh_dir(&format!("short-read-{cut}"));
        std::fs::write(work.join("wal.0"), &wal).unwrap();
        let faults = relstore::ScriptedFaults::new().short_read(0, cut).into_handle();
        let db = Database::open_with_faults(&work, faults)
            .unwrap_or_else(|e| panic!("open failed at short read {cut}: {e}"));
        assert!(!db.is_read_only(), "short read {cut}: must stay writable");
        assert_is_prefix_state(&dump(&db), &states, &format!("short read at {cut}"));
    }
}

#[test]
fn failed_wal_read_is_an_explicit_error_never_silent() {
    let dir = fresh_dir("fail-read");
    build_history(&dir, 4);
    let faults = relstore::ScriptedFaults::new().fail_read(0).into_handle();
    match Database::open_with_faults(&dir, faults) {
        Err(Error::Io(_)) => {}
        Err(other) => panic!("expected Io error, got {other}"),
        Ok(_) => panic!("an unreadable WAL must not open silently"),
    }
}

#[test]
fn unreadable_newest_snapshot_falls_back_one_generation() {
    // Same fallback contract as a *corrupt* newest snapshot: a failed or
    // short read of snapshot.N recovers from snapshot.(N-1) + wal.(N-1).
    let dir = fresh_dir("snap-read");
    let mut db = Database::open(&dir).unwrap();
    db.create_table(table_schema("t", &[("k", SqlType::Int)])).unwrap();
    db.insert_rows("t", [vec![Value::Int(1)]]).unwrap();
    db.checkpoint().unwrap(); // snapshot.1
    db.insert_rows("t", [vec![Value::Int(2)]]).unwrap();
    let state_at_ckpt2 = dump(&db);
    db.checkpoint().unwrap(); // snapshot.2
    db.insert_rows("t", [vec![Value::Int(3)]]).unwrap();
    drop(db);

    // Outright read failure of snapshot.2 (the first recovery read).
    let faults = relstore::ScriptedFaults::new().fail_read(0).into_handle();
    let db = Database::open_with_faults(&dir, faults).unwrap();
    assert_eq!(dump(&db), state_at_ckpt2, "fail_read fallback");
    drop(db);

    // Short read of snapshot.2: the truncated payload fails the CRC.
    let faults = relstore::ScriptedFaults::new().short_read(0, 10).into_handle();
    let db = Database::open_with_faults(&dir, faults).unwrap();
    assert_eq!(dump(&db), state_at_ckpt2, "short_read fallback");
}

#[test]
fn database_recovered_from_short_read_grows_cleanly() {
    let dir = fresh_dir("short-read-regrow");
    let states = build_history(&dir, 4);
    let wal_len = std::fs::metadata(dir.join("wal.0")).unwrap().len() as usize;

    let faults = relstore::ScriptedFaults::new().short_read(0, wal_len - 3).into_handle();
    let mut db = Database::open_with_faults(&dir, faults).unwrap();
    assert_is_prefix_state(&dump(&db), &states, "after short read");
    db.insert_rows("t", [vec![Value::Int(777), Value::str("post-short-read")]]).unwrap();
    let expect = dump(&db);
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(dump(&db), expect);
}

// ---------------------------------------------------------------------------
// Batches (continued)
// ---------------------------------------------------------------------------

#[test]
fn nested_batches_commit_one_frame_at_outermost_level() {
    let dir = fresh_dir("batch-nest");
    let mut db = Database::open(&dir).unwrap();
    db.begin_batch();
    db.create_table(table_schema("t", &[("k", SqlType::Int)])).unwrap();
    db.begin_batch(); // nested (as the store does around the loader)
    db.insert_rows("t", [vec![Value::Int(1)]]).unwrap();
    db.commit_batch().unwrap(); // inner: buffered, not yet durable
    db.insert_rows("t", [vec![Value::Int(2)]]).unwrap();
    let full = dump(&db);
    db.commit_batch().unwrap(); // outer: one durable frame
    drop(db);
    let db = Database::open(&dir).unwrap();
    assert_eq!(dump(&db), full);
}
