//! Executor semantics that must hold at every worker-pool width: outer-join
//! residual ON predicates, UNION (ALL and deduplicating), ORDER BY
//! determinism, and row-budget exhaustion raised from worker threads.

use relstore::{Database, Error, Rel, Value};

/// Build a database with two related tables big enough that scans, joins and
/// sorts all split into multiple morsels (MORSEL_ROWS = 4096).
fn big_db(threads: Option<usize>) -> Database {
    let mut db = Database::new();
    db.set_threads(threads);
    db.execute("CREATE TABLE fact (k INT, v INT, tag TEXT)").unwrap();
    db.execute("CREATE TABLE dim (k INT, w INT)").unwrap();
    let n = 6 * relstore::MORSEL_ROWS + 123;
    db.insert_rows(
        "fact",
        (0..n as i64).map(|i| {
            vec![
                Value::Int(i % 97),
                Value::Int(i),
                Value::str(if i % 3 == 0 { "fizz" } else { "plain" }),
            ]
        }),
    )
    .unwrap();
    db.insert_rows("dim", (0..97i64).map(|k| vec![Value::Int(k), Value::Int(k * 1000)]))
        .unwrap();
    db
}

fn rows_of(rel: &Rel) -> &[Vec<Value>] {
    &rel.rows
}

#[test]
fn results_identical_at_every_thread_count() {
    let queries = [
        // Multi-morsel scan + filter + projection + sort. (No modulo in the
        // dialect: `v - v/7*7 = 0` is `v % 7 = 0` with truncating division.)
        "SELECT v, v * 2 AS d FROM fact WHERE v - v / 7 * 7 = 0 ORDER BY v DESC",
        // Hash join with stream predicate and sort.
        "SELECT f.v, d.w FROM fact AS f, dim AS d \
         WHERE f.k = d.k AND d.w > 50000 ORDER BY f.v LIMIT 500",
        // Aggregation over a parallel scan.
        "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM fact GROUP BY k ORDER BY k",
    ];
    let reference = big_db(Some(1));
    for q in queries {
        let expected = reference.query(q).unwrap();
        for threads in [2, 3, 4, 8] {
            let db = big_db(Some(threads));
            let got = db.query(q).unwrap();
            assert_eq!(
                rows_of(&got),
                rows_of(&expected),
                "threads={threads} changed the result (including order) of {q}"
            );
        }
    }
}

#[test]
fn left_outer_join_with_residual_on_predicate() {
    for threads in [1, 4] {
        let db = big_db(Some(threads));
        // `d.w > 90000` is not an equi-key: it stays a residual ON conjunct.
        // Left rows whose match fails the residual must still appear,
        // null-extended — this is what distinguishes ON from WHERE.
        let rel = db
            .query(
                "SELECT f.v, d.w FROM fact AS f LEFT OUTER JOIN dim AS d \
                 ON f.k = d.k AND d.w > 90000 \
                 WHERE f.v < 200 ORDER BY f.v",
            )
            .unwrap();
        assert_eq!(rel.rows.len(), 200, "threads={threads}: every left row survives");
        for row in &rel.rows {
            let Value::Int(v) = row[0] else { panic!("non-int v") };
            let k = v % 97;
            if k * 1000 > 90_000 {
                assert_eq!(row[1], Value::Int(k * 1000), "threads={threads} v={v}");
            } else {
                assert_eq!(row[1], Value::Null, "threads={threads} v={v}");
            }
        }
    }
}

#[test]
fn union_all_keeps_duplicates_union_removes_them() {
    for threads in [1, 4] {
        let db = big_db(Some(threads));
        let all = db
            .query(
                "SELECT tag FROM fact WHERE v < 300 \
                 UNION ALL SELECT tag FROM fact WHERE v < 300",
            )
            .unwrap();
        assert_eq!(all.rows.len(), 600, "threads={threads}");
        let distinct = db
            .query(
                "SELECT tag FROM fact WHERE v < 300 \
                 UNION SELECT tag FROM fact WHERE v < 300 ORDER BY tag",
            )
            .unwrap();
        assert_eq!(
            distinct.rows,
            vec![vec![Value::str("fizz")], vec![Value::str("plain")]],
            "threads={threads}"
        );
        // Dedupe keeps first occurrences: order follows the left branch.
        let first_wins = db
            .query("SELECT tag FROM fact WHERE v < 10 UNION SELECT tag FROM fact WHERE v < 10")
            .unwrap();
        assert_eq!(
            first_wins.rows,
            vec![vec![Value::str("fizz")], vec![Value::str("plain")]],
            "threads={threads}"
        );
    }
}

#[test]
fn order_by_is_stable_for_equal_keys_under_parallelism() {
    for threads in [1, 2, 4, 8] {
        let db = big_db(Some(threads));
        // All rows with the same k share the sort key; stability demands
        // they stay in insertion (v) order at every thread count.
        let rel = db.query("SELECT k, v FROM fact WHERE k = 13 ORDER BY k").unwrap();
        let vs: Vec<i64> = rel
            .rows
            .iter()
            .map(|r| match r[1] {
                Value::Int(v) => v,
                _ => panic!(),
            })
            .collect();
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        assert_eq!(vs, sorted, "threads={threads}: equal-key rows reordered");
    }
}

#[test]
fn float_aggregates_identical_at_every_thread_count() {
    // f64 summation is association-sensitive, so AVG/SUM over doubles would
    // drift across pool widths if partials were merged in completion order.
    // They are merged in morsel order instead: the summation tree depends
    // only on MORSEL_ROWS, so these must be bit-identical, not just close.
    let q = "SELECT k, AVG(v * 0.1) AS a, SUM(v * 0.001) AS s \
             FROM fact GROUP BY k ORDER BY k";
    let expected = big_db(Some(1)).query(q).unwrap();
    for threads in [2, 4, 8] {
        let got = big_db(Some(threads)).query(q).unwrap();
        assert_eq!(got.rows, expected.rows, "threads={threads}: float aggs drifted");
    }
}

#[test]
fn distinct_first_occurrence_order_is_thread_count_invariant() {
    // No ORDER BY: DISTINCT output order is the first-occurrence order of
    // the (multi-morsel) scan, which the partitioned dedupe must preserve.
    let q = "SELECT DISTINCT k, tag FROM fact";
    let expected = big_db(Some(1)).query(q).unwrap();
    // gcd(97, 3) = 1, so every k sees both tags: 97 * 2 distinct pairs.
    assert_eq!(expected.rows.len(), 194, "fixture sanity");
    for threads in [2, 4, 8] {
        let got = big_db(Some(threads)).query(q).unwrap();
        assert_eq!(got.rows, expected.rows, "threads={threads}: dedupe order changed");
    }
}

#[test]
fn multi_column_join_keys_identical_at_every_thread_count() {
    // Composite (k, tag) keys take the Vec<Value> build path; the unfiltered
    // right side (~24k rows) crosses the parallel partitioned-build cutoff.
    let q = "SELECT f.v AS fv, g.v AS gv FROM fact AS f, fact AS g \
             WHERE f.k = g.k AND f.tag = g.tag AND f.v < 50 \
             ORDER BY fv, gv LIMIT 500";
    let expected = big_db(Some(1)).query(q).unwrap();
    assert_eq!(expected.rows.len(), 500, "fixture sanity");
    for threads in [2, 4, 8] {
        let got = big_db(Some(threads)).query(q).unwrap();
        assert_eq!(got.rows, expected.rows, "threads={threads}: composite-key join drifted");
    }
}

#[test]
fn row_budget_exhaustion_raised_from_worker_threads() {
    for threads in [1, 4, 8] {
        let mut db = big_db(Some(threads));
        // The full scan produces ~24k rows; a 1000-row budget must trip in
        // whichever worker thread crosses it and surface as LimitExceeded.
        db.set_row_budget(Some(1000));
        let err = db.query("SELECT v FROM fact").unwrap_err();
        assert_eq!(err, Error::LimitExceeded, "threads={threads}");
        // A query under budget still succeeds afterwards (budget is
        // per-query, not depleted globally).
        let ok = db.query("SELECT v FROM fact WHERE v < 100").unwrap();
        assert_eq!(ok.rows.len(), 100, "threads={threads}");
    }
}

#[test]
fn env_thread_override_is_picked_up() {
    // `threads(None)` defers to RELSTORE_THREADS; results must be identical
    // either way. Run last-ditch sanity rather than forking a process: set,
    // query, restore.
    let prev = std::env::var("RELSTORE_THREADS").ok();
    std::env::set_var("RELSTORE_THREADS", "3");
    let db = big_db(None);
    let got = db.query("SELECT v FROM fact WHERE v - v / 11 * 11 = 0 ORDER BY v").unwrap();
    match prev {
        Some(p) => std::env::set_var("RELSTORE_THREADS", p),
        None => std::env::remove_var("RELSTORE_THREADS"),
    }
    let reference = big_db(Some(1));
    let expected = reference.query("SELECT v FROM fact WHERE v - v / 11 * 11 = 0 ORDER BY v").unwrap();
    assert_eq!(got.rows, expected.rows);
}
