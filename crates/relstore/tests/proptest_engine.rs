//! Property tests for the relational engine: null-compressed row storage is
//! lossless; index probes agree with full scans; hash joins agree with
//! nested-loop reference joins; LIKE matches a reference matcher.

use proptest::prelude::*;
use relstore::{CompressedRow, Database, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => Just(Value::Null),
        2 => any::<i64>().prop_map(Value::Int),
        2 => (-1000.0..1000.0f64).prop_map(Value::Double),
        1 => any::<bool>().prop_map(Value::Bool),
        3 => "[a-z]{0,8}".prop_map(Value::str),
    ]
}

proptest! {
    #[test]
    fn compressed_row_roundtrip(vals in proptest::collection::vec(arb_value(), 0..200)) {
        let row = CompressedRow::from_values(&vals);
        prop_assert_eq!(row.decompress(vals.len()), vals.clone());
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(&row.get(i), v);
        }
        prop_assert_eq!(row.non_null_count(), vals.iter().filter(|v| !v.is_null()).count());
    }

    #[test]
    fn index_probe_equals_scan(
        keys in proptest::collection::vec(0..20i64, 1..60),
        probe in 0..20i64,
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, pos INT)").unwrap();
        let rows: Vec<Vec<Value>> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| vec![Value::Int(k), Value::Int(i as i64)])
            .collect();
        db.insert_rows("t", rows).unwrap();
        let scan = db
            .query(&format!("SELECT pos FROM t WHERE k = {probe} ORDER BY pos"))
            .unwrap();
        db.execute("CREATE INDEX ON t(k)").unwrap();
        let probed = db
            .query(&format!("SELECT pos FROM t WHERE k = {probe} ORDER BY pos"))
            .unwrap();
        prop_assert_eq!(scan.rows, probed.rows);
    }

    #[test]
    fn joins_match_reference(
        left in proptest::collection::vec((0..8i64, 0..100i64), 0..25),
        right in proptest::collection::vec((0..8i64, 0..100i64), 0..25),
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE l (k INT, v INT)").unwrap();
        db.execute("CREATE TABLE r (k INT, w INT)").unwrap();
        db.insert_rows("l", left.iter().map(|&(k, v)| vec![Value::Int(k), Value::Int(v)]))
            .unwrap();
        db.insert_rows("r", right.iter().map(|&(k, w)| vec![Value::Int(k), Value::Int(w)]))
            .unwrap();

        // Reference inner join.
        let mut expected: Vec<(i64, i64, i64)> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rw) in &right {
                if lk == rk {
                    expected.push((lk, lv, rw));
                }
            }
        }
        expected.sort_unstable();

        let got = db
            .query("SELECT l.k, l.v, r.w FROM l, r WHERE l.k = r.k ORDER BY 1, 2, 3")
            .unwrap();
        let got: Vec<(i64, i64, i64)> = got
            .rows
            .iter()
            .map(|r| match (&r[0], &r[1], &r[2]) {
                (Value::Int(a), Value::Int(b), Value::Int(c)) => (*a, *b, *c),
                other => panic!("unexpected row {other:?}"),
            })
            .collect();
        prop_assert_eq!(got, expected.clone());

        // Index nested-loop path must agree too.
        db.execute("CREATE INDEX ON r(k)").unwrap();
        let got2 = db
            .query("SELECT l.k, l.v, r.w FROM l, r WHERE l.k = r.k ORDER BY 1, 2, 3")
            .unwrap();
        let got2: Vec<(i64, i64, i64)> = got2
            .rows
            .iter()
            .map(|r| match (&r[0], &r[1], &r[2]) {
                (Value::Int(a), Value::Int(b), Value::Int(c)) => (*a, *b, *c),
                other => panic!("unexpected row {other:?}"),
            })
            .collect();
        prop_assert_eq!(got2, expected);
    }

    #[test]
    fn left_join_preserves_all_left_rows(
        left in proptest::collection::vec(0..8i64, 0..20),
        right in proptest::collection::vec(0..8i64, 0..20),
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE l (k INT)").unwrap();
        db.execute("CREATE TABLE r (k INT)").unwrap();
        db.insert_rows("l", left.iter().map(|&k| vec![Value::Int(k)])).unwrap();
        db.insert_rows("r", right.iter().map(|&k| vec![Value::Int(k)])).unwrap();
        let got = db
            .query("SELECT l.k, r.k AS rk FROM l LEFT OUTER JOIN r ON l.k = r.k")
            .unwrap();
        // Row count: every left row appears max(1, matches) times.
        let expected: usize = left
            .iter()
            .map(|lk| right.iter().filter(|rk| *rk == lk).count().max(1))
            .sum();
        prop_assert_eq!(got.rows.len(), expected);
        // No left row lost.
        for &lk in &left {
            prop_assert!(got.rows.iter().any(|r| r[0] == Value::Int(lk)));
        }
    }
}
