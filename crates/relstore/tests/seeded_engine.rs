//! Property tests for the relational engine: null-compressed row storage is
//! lossless; index probes agree with full scans; hash joins agree with
//! nested-loop reference joins; LIKE matches a reference matcher.
//!
//! Written as deterministic seeded-loop property tests (a fixed-seed
//! SplitMix64 drives the generators) so the suite needs no external
//! dependency and every run exercises exactly the same cases.

use relstore::{CompressedRow, Database, Value};

/// Minimal SplitMix64 — local copy so the test crate stays dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as usize) as i64
    }

    fn string_from(&mut self, charset: &[char], max: usize) -> String {
        let len = self.below(max + 1);
        (0..len).map(|_| charset[self.below(charset.len())]).collect()
    }
}

fn arb_value(rng: &mut Rng) -> Value {
    match rng.below(11) {
        0..=2 => Value::Null,
        3 | 4 => Value::Int(rng.next() as i64),
        5 | 6 => Value::Double((rng.below(2_000_000) as f64 - 1_000_000.0) / 1000.0),
        7 => Value::Bool(rng.below(2) == 0),
        _ => Value::str(rng.string_from(&['a', 'b', 'c', 'x', 'y', 'z'], 8)),
    }
}

#[test]
fn compressed_row_roundtrip() {
    let mut rng = Rng(0xC0FFEE);
    for case in 0..300 {
        let vals: Vec<Value> = (0..rng.below(200)).map(|_| arb_value(&mut rng)).collect();
        let row = CompressedRow::from_values(&vals);
        assert_eq!(row.decompress(vals.len()), vals, "case {case}");
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&row.get(i), v, "case {case} col {i}");
        }
        assert_eq!(row.non_null_count(), vals.iter().filter(|v| !v.is_null()).count());
    }
}

#[test]
fn index_probe_equals_scan() {
    let mut rng = Rng(0xDB);
    for _ in 0..200 {
        let keys: Vec<i64> = (0..1 + rng.below(60)).map(|_| rng.int(0, 20)).collect();
        let probe = rng.int(0, 20);
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, pos INT)").unwrap();
        let rows: Vec<Vec<Value>> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| vec![Value::Int(k), Value::Int(i as i64)])
            .collect();
        db.insert_rows("t", rows).unwrap();
        let scan = db
            .query(&format!("SELECT pos FROM t WHERE k = {probe} ORDER BY pos"))
            .unwrap();
        db.execute("CREATE INDEX ON t(k)").unwrap();
        let probed = db
            .query(&format!("SELECT pos FROM t WHERE k = {probe} ORDER BY pos"))
            .unwrap();
        assert_eq!(scan.rows, probed.rows);
    }
}

#[test]
fn joins_match_reference() {
    let mut rng = Rng(0x7010);
    for _ in 0..120 {
        let left: Vec<(i64, i64)> =
            (0..rng.below(25)).map(|_| (rng.int(0, 8), rng.int(0, 100))).collect();
        let right: Vec<(i64, i64)> =
            (0..rng.below(25)).map(|_| (rng.int(0, 8), rng.int(0, 100))).collect();

        let mut db = Database::new();
        db.execute("CREATE TABLE l (k INT, v INT)").unwrap();
        db.execute("CREATE TABLE r (k INT, w INT)").unwrap();
        db.insert_rows("l", left.iter().map(|&(k, v)| vec![Value::Int(k), Value::Int(v)]))
            .unwrap();
        db.insert_rows("r", right.iter().map(|&(k, w)| vec![Value::Int(k), Value::Int(w)]))
            .unwrap();

        // Reference inner join.
        let mut expected: Vec<(i64, i64, i64)> = Vec::new();
        for &(lk, lv) in &left {
            for &(rk, rw) in &right {
                if lk == rk {
                    expected.push((lk, lv, rw));
                }
            }
        }
        expected.sort_unstable();

        let fetch = |db: &Database| -> Vec<(i64, i64, i64)> {
            db.query("SELECT l.k, l.v, r.w FROM l, r WHERE l.k = r.k ORDER BY 1, 2, 3")
                .unwrap()
                .rows
                .iter()
                .map(|r| match (&r[0], &r[1], &r[2]) {
                    (Value::Int(a), Value::Int(b), Value::Int(c)) => (*a, *b, *c),
                    other => panic!("unexpected row {other:?}"),
                })
                .collect()
        };
        assert_eq!(fetch(&db), expected);

        // Index nested-loop path must agree too.
        db.execute("CREATE INDEX ON r(k)").unwrap();
        assert_eq!(fetch(&db), expected);
    }
}

#[test]
fn left_join_preserves_all_left_rows() {
    let mut rng = Rng(0x0517E6);
    for _ in 0..200 {
        let left: Vec<i64> = (0..rng.below(20)).map(|_| rng.int(0, 8)).collect();
        let right: Vec<i64> = (0..rng.below(20)).map(|_| rng.int(0, 8)).collect();
        let mut db = Database::new();
        db.execute("CREATE TABLE l (k INT)").unwrap();
        db.execute("CREATE TABLE r (k INT)").unwrap();
        db.insert_rows("l", left.iter().map(|&k| vec![Value::Int(k)])).unwrap();
        db.insert_rows("r", right.iter().map(|&k| vec![Value::Int(k)])).unwrap();
        let got = db
            .query("SELECT l.k, r.k AS rk FROM l LEFT OUTER JOIN r ON l.k = r.k")
            .unwrap();
        // Row count: every left row appears max(1, matches) times.
        let expected: usize = left
            .iter()
            .map(|lk| right.iter().filter(|rk| *rk == lk).count().max(1))
            .sum();
        assert_eq!(got.rows.len(), expected);
        // No left row lost.
        for &lk in &left {
            assert!(got.rows.iter().any(|r| r[0] == Value::Int(lk)));
        }
    }
}

/// Reference LIKE matcher: the obvious exponential recursion, safe here
/// because generated strings are short.
fn like_reference(s: &[char], p: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('%') => (0..=s.len()).any(|k| like_reference(&s[k..], &p[1..])),
        Some('_') => !s.is_empty() && like_reference(&s[1..], &p[1..]),
        Some(c) => s.first() == Some(c) && like_reference(&s[1..], &p[1..]),
    }
}

#[test]
fn like_matches_reference() {
    let mut rng = Rng(0x11FE);
    let mut db = Database::new();
    db.execute("CREATE TABLE s (v TEXT)").unwrap();
    for _ in 0..400 {
        let text = rng.string_from(&['a', 'b', 'c', '%', '_', 'é'], 10);
        let pattern = rng.string_from(&['a', 'b', 'c', '%', '_', 'é'], 8);
        let expected = like_reference(
            &text.chars().collect::<Vec<_>>(),
            &pattern.chars().collect::<Vec<_>>(),
        );
        let got = db
            .query(&format!(
                "SELECT CASE WHEN '{text}' LIKE '{pattern}' THEN 1 ELSE 0 END AS m"
            ))
            .unwrap();
        assert_eq!(
            got.rows[0][0],
            Value::Int(expected as i64),
            "text {text:?} pattern {pattern:?}"
        );
    }
}

#[test]
fn hostile_like_pattern_completes_quickly() {
    // The old recursive matcher exploded exponentially on %a%a%a%... against
    // a long non-matching string; the iterative matcher is linear-ish.
    let text = "a".repeat(2_000) + "b";
    let pattern = "%a".repeat(30) + "%c";
    let db = Database::new();
    let start = std::time::Instant::now();
    let got = db
        .query(&format!(
            "SELECT CASE WHEN '{text}' LIKE '{pattern}' THEN 1 ELSE 0 END AS m"
        ))
        .unwrap();
    assert_eq!(got.rows[0][0], Value::Int(0));
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "LIKE took {:?}",
        start.elapsed()
    );
}
