//! End-to-end SQL engine tests exercising every construct the DB2RDF
//! SPARQL→SQL translation emits (paper Figs. 12 & 13), plus general engine
//! semantics.

use relstore::{Database, Error, ExecOutcome, Rel, Value};

fn db_with_people() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE person (name TEXT, age INT, city TEXT)").unwrap();
    db.execute(
        "INSERT INTO person VALUES
         ('ada', 36, 'london'), ('alan', 41, 'london'),
         ('grace', 85, 'ny'), ('edsger', 72, NULL)",
    )
    .unwrap();
    db
}

fn rows(rel: &Rel) -> Vec<Vec<String>> {
    rel.rows.iter().map(|r| r.iter().map(|v| v.to_string()).collect()).collect()
}

#[test]
fn select_where_projection() {
    let db = db_with_people();
    let rel = db.query("SELECT name, age FROM person WHERE city = 'london' ORDER BY age").unwrap();
    assert_eq!(rows(&rel), vec![vec!["ada", "36"], vec!["alan", "41"]]);
    assert_eq!(rel.column_names(), vec!["name", "age"]);
}

#[test]
fn where_null_is_not_true() {
    let db = db_with_people();
    // edsger has NULL city: excluded by both predicates (3-valued logic).
    let rel = db.query("SELECT name FROM person WHERE city = 'x' OR city <> 'x'").unwrap();
    assert_eq!(rel.rows.len(), 3);
}

#[test]
fn is_null_and_is_not_null() {
    let db = db_with_people();
    let rel = db.query("SELECT name FROM person WHERE city IS NULL").unwrap();
    assert_eq!(rows(&rel), vec![vec!["edsger"]]);
    let rel = db.query("SELECT COUNT(*) AS n FROM person WHERE city IS NOT NULL").unwrap();
    assert_eq!(rel.rows[0][0], Value::Int(3));
}

#[test]
fn inner_join_via_where_equality() {
    let mut db = db_with_people();
    db.execute("CREATE TABLE capital (city TEXT, country TEXT)").unwrap();
    db.execute("INSERT INTO capital VALUES ('london', 'uk'), ('paris', 'fr')").unwrap();
    let rel = db
        .query(
            "SELECT p.name, c.country FROM person AS p, capital AS c
             WHERE p.city = c.city ORDER BY p.name",
        )
        .unwrap();
    assert_eq!(rows(&rel), vec![vec!["ada", "uk"], vec!["alan", "uk"]]);
}

#[test]
fn explicit_join_on() {
    let mut db = db_with_people();
    db.execute("CREATE TABLE capital (city TEXT, country TEXT)").unwrap();
    db.execute("INSERT INTO capital VALUES ('london', 'uk'), ('ny', 'us')").unwrap();
    let rel = db
        .query(
            "SELECT p.name, c.country FROM person p JOIN capital c ON p.city = c.city
             ORDER BY 1",
        )
        .unwrap();
    assert_eq!(rel.rows.len(), 3);
}

#[test]
fn left_outer_join_pads_nulls() {
    let mut db = db_with_people();
    db.execute("CREATE TABLE capital (city TEXT, country TEXT)").unwrap();
    db.execute("INSERT INTO capital VALUES ('london', 'uk')").unwrap();
    let rel = db
        .query(
            "SELECT p.name, c.country FROM person p
             LEFT OUTER JOIN capital c ON p.city = c.city ORDER BY p.name",
        )
        .unwrap();
    assert_eq!(
        rows(&rel),
        vec![
            vec!["ada", "uk"],
            vec!["alan", "uk"],
            vec!["edsger", "NULL"],
            vec!["grace", "NULL"],
        ]
    );
}

#[test]
fn left_join_with_residual_on_condition() {
    let mut db = Database::new();
    db.execute("CREATE TABLE l (k INT)").unwrap();
    db.execute("CREATE TABLE r (k INT, v INT)").unwrap();
    db.execute("INSERT INTO l VALUES (1), (2)").unwrap();
    db.execute("INSERT INTO r VALUES (1, 10), (1, 99), (2, 99)").unwrap();
    // Residual v < 50 filters matches; row 2 keeps the left side.
    let rel = db
        .query("SELECT l.k, r.v FROM l LEFT JOIN r ON l.k = r.k AND r.v < 50 ORDER BY l.k")
        .unwrap();
    assert_eq!(rows(&rel), vec![vec!["1", "10"], vec!["2", "NULL"]]);
}

#[test]
fn union_all_and_union_distinct() {
    let db = db_with_people();
    let rel = db
        .query("SELECT city FROM person WHERE name = 'ada' UNION ALL SELECT city FROM person WHERE name = 'alan'")
        .unwrap();
    assert_eq!(rel.rows.len(), 2);
    let rel = db
        .query("SELECT city FROM person WHERE name = 'ada' UNION SELECT city FROM person WHERE name = 'alan'")
        .unwrap();
    assert_eq!(rel.rows.len(), 1);
}

#[test]
fn union_arity_mismatch_is_error() {
    let db = db_with_people();
    assert!(matches!(
        db.query("SELECT name FROM person UNION SELECT name, age FROM person"),
        Err(Error::Plan(_))
    ));
}

#[test]
fn ctes_thread_through() {
    let db = db_with_people();
    let rel = db
        .query(
            "WITH locals AS (SELECT name, age FROM person WHERE city = 'london'),
                  old AS (SELECT name FROM locals WHERE age > 40)
             SELECT o.name FROM old AS o",
        )
        .unwrap();
    assert_eq!(rows(&rel), vec![vec!["alan"]]);
}

#[test]
fn case_and_coalesce() {
    let db = db_with_people();
    let rel = db
        .query(
            "SELECT name,
                    CASE WHEN age >= 70 THEN 'old' ELSE 'young' END AS band,
                    COALESCE(city, 'unknown') AS c
             FROM person ORDER BY name",
        )
        .unwrap();
    assert_eq!(
        rows(&rel),
        vec![
            vec!["ada", "young", "london"],
            vec!["alan", "young", "london"],
            vec!["edsger", "old", "unknown"],
            vec!["grace", "old", "ny"],
        ]
    );
}

#[test]
fn unnest_flips_columns_to_rows() {
    // The paper's Fig. 13 uses DB2's TABLE(T.valm, T.val0) to turn the CASE
    // projections of an OR-merged star into one row per present predicate.
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a TEXT, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES ('x', NULL), (NULL, 'y'), ('p', 'q')").unwrap();
    let rel = db
        .query("SELECT l.v FROM t, UNNEST (t.a, t.b) AS L(v) ORDER BY l.v")
        .unwrap();
    assert_eq!(rows(&rel), vec![vec!["p"], vec!["q"], vec!["x"], vec!["y"]]);
}

#[test]
fn unnest_tuples_keep_pairs_together() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (p0 TEXT, v0 TEXT, p1 TEXT, v1 TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES ('born', '1912', 'died', '1954')").unwrap();
    db.execute("INSERT INTO t VALUES (NULL, NULL, 'died', '1990')").unwrap();
    let rel = db
        .query(
            "SELECT l.p, l.v FROM t, UNNEST ((t.p0, t.v0), (t.p1, t.v1)) AS L(p, v)
             ORDER BY l.v",
        )
        .unwrap();
    assert_eq!(
        rows(&rel),
        vec![vec!["born", "1912"], vec!["died", "1954"], vec!["died", "1990"]]
    );
}

#[test]
fn distinct_order_limit_offset() {
    let db = db_with_people();
    let rel = db.query("SELECT DISTINCT city FROM person WHERE city IS NOT NULL ORDER BY city DESC LIMIT 1 OFFSET 1").unwrap();
    assert_eq!(rows(&rel), vec![vec!["london"]]);
}

#[test]
fn aggregates_group_by_having() {
    let db = db_with_people();
    let rel = db
        .query(
            "SELECT city, COUNT(*) AS n, AVG(age) AS a, MIN(age) AS lo, MAX(age) AS hi
             FROM person WHERE city IS NOT NULL GROUP BY city HAVING COUNT(*) > 1",
        )
        .unwrap();
    assert_eq!(rows(&rel), vec![vec!["london", "2", "38.5", "36", "41"]]);
}

#[test]
fn distinct_aggregates() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k INTEGER, v INTEGER)").unwrap();
    for (k, v) in [(1, 10), (1, 10), (1, 20), (2, 5), (2, 5), (2, 5)] {
        db.execute(&format!("INSERT INTO t VALUES ({k}, {v})")).unwrap();
    }
    let rel = db
        .query(
            "SELECT k, COUNT(DISTINCT v) AS n, SUM(DISTINCT v) AS s, COUNT(v) AS all_n
             FROM t GROUP BY k ORDER BY k",
        )
        .unwrap();
    assert_eq!(rows(&rel), vec![vec!["1", "2", "30", "3"], vec!["2", "1", "5", "3"]]);
    // DISTINCT over an empty global group still yields one row.
    let rel = db.query("SELECT COUNT(DISTINCT v) AS n FROM t WHERE v > 1000").unwrap();
    assert_eq!(rel.rows[0], vec![Value::Int(0)]);
}

#[test]
fn min_max_tie_prefers_int_over_double() {
    // An Int and a Double of equal value compare Equal under total_cmp; the
    // retained MIN/MAX representative must not depend on row order, so the
    // Int wins regardless of which arrives first.
    let mut db = Database::new();
    db.execute("CREATE TABLE m (v DOUBLE)").unwrap();
    db.execute("INSERT INTO m VALUES (1.0), (1), (2), (2.0)").unwrap();
    let rel = db.query("SELECT MIN(v) AS lo, MAX(v) AS hi FROM m").unwrap();
    assert_eq!(rel.rows[0], vec![Value::Int(1), Value::Int(2)]);
}

#[test]
fn global_aggregate_on_empty_input() {
    let db = db_with_people();
    let rel = db.query("SELECT COUNT(*) AS n, SUM(age) AS s FROM person WHERE age > 1000").unwrap();
    assert_eq!(rel.rows[0], vec![Value::Int(0), Value::Null]);
}

#[test]
fn in_list_and_like() {
    let db = db_with_people();
    let rel = db
        .query("SELECT name FROM person WHERE city IN ('ny', 'paris') OR name LIKE 'a%a'")
        .unwrap();
    assert_eq!(rel.rows.len(), 2); // grace (ny), ada (a%a)
}

#[test]
fn cast_and_arithmetic() {
    let db = db_with_people();
    let rel = db
        .query("SELECT name, CAST(age AS DOUBLE) / 2 AS half FROM person WHERE name = 'ada'")
        .unwrap();
    assert_eq!(rel.rows[0][1], Value::Double(18.0));
    let rel = db.query("SELECT 7 / 2 AS a, 7.0 / 2 AS b, 1 + 2 * 3 AS c").unwrap();
    assert_eq!(rel.rows[0], vec![Value::Int(3), Value::Double(3.5), Value::Int(7)]);
}

#[test]
fn subquery_in_from() {
    let db = db_with_people();
    let rel = db
        .query(
            "SELECT s.name FROM (SELECT name, age FROM person WHERE age > 40) AS s
             WHERE s.age < 50",
        )
        .unwrap();
    assert_eq!(rows(&rel), vec![vec!["alan"]]);
}

#[test]
fn scalar_functions() {
    let db = Database::new();
    let rel = db
        .query(
            "SELECT LOWER('AbC') AS a, UPPER('x') AS b, LENGTH('héllo') AS c,
                    SUBSTR('hello', 2, 3) AS d, REPLACE('aXa', 'X', 'y') AS e,
                    'a' || 'b' || 1 AS f",
        )
        .unwrap();
    assert_eq!(
        rel.rows[0],
        vec![
            Value::str("abc"),
            Value::str("X"),
            Value::Int(5),
            Value::str("ell"),
            Value::str("aya"),
            Value::str("ab1"),
        ]
    );
}

#[test]
fn registered_custom_function() {
    let mut db = Database::new();
    db.register_function("twice", |args| {
        Ok(match args[0].as_f64() {
            Some(x) => Value::Double(2.0 * x),
            None => Value::Null,
        })
    });
    let rel = db.query("SELECT TWICE(21) AS x").unwrap();
    assert_eq!(rel.rows[0][0], Value::Double(42.0));
}

#[test]
fn unknown_table_and_column_errors() {
    let db = db_with_people();
    assert!(matches!(db.query("SELECT x FROM nope"), Err(Error::Plan(_))));
    assert!(matches!(db.query("SELECT nope FROM person"), Err(Error::Plan(_))));
}

#[test]
fn ambiguous_column_is_error() {
    let mut db = db_with_people();
    db.execute("CREATE TABLE other (name TEXT)").unwrap();
    db.execute("INSERT INTO other VALUES ('z')").unwrap();
    assert!(matches!(
        db.query("SELECT name FROM person, other"),
        Err(Error::Plan(_))
    ));
}

#[test]
fn row_budget_stops_cross_products() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    let vals: Vec<String> = (0..1000).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", vals.join(","))).unwrap();
    db.set_row_budget(Some(10_000));
    let err = db.query("SELECT x.a FROM t AS x, t AS y").unwrap_err();
    assert_eq!(err, Error::LimitExceeded);
    db.set_row_budget(None);
    assert!(db.query("SELECT COUNT(*) AS n FROM t AS x, t AS y").is_ok());
}

#[test]
fn index_probe_matches_full_scan() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (k TEXT, v INT)").unwrap();
    for chunk in (0..500).collect::<Vec<_>>().chunks(100) {
        let vals: Vec<String> =
            chunk.iter().map(|i| format!("('k{}', {i})", i % 37)).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", vals.join(","))).unwrap();
    }
    let unindexed = db.query("SELECT v FROM t WHERE k = 'k5' ORDER BY v").unwrap();
    db.execute("CREATE INDEX ON t(k)").unwrap();
    let indexed = db.query("SELECT v FROM t WHERE k = 'k5' ORDER BY v").unwrap();
    assert_eq!(unindexed, indexed);
    assert!(!indexed.rows.is_empty());
}

#[test]
fn insert_with_column_list_fills_nulls() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INT, b TEXT, c INT)").unwrap();
    let out = db.execute("INSERT INTO t (c, a) VALUES (3, 1)").unwrap();
    assert_eq!(out, ExecOutcome::Inserted(1));
    let rel = db.query("SELECT a, b, c FROM t").unwrap();
    assert_eq!(rel.rows[0], vec![Value::Int(1), Value::Null, Value::Int(3)]);
}

#[test]
fn order_by_nulls_first_and_desc() {
    let db = db_with_people();
    let rel = db.query("SELECT city FROM person ORDER BY city").unwrap();
    assert_eq!(rel.rows[0][0], Value::Null);
    let rel = db.query("SELECT city FROM person ORDER BY city DESC").unwrap();
    assert_eq!(rel.rows[3][0], Value::Null);
}

#[test]
fn wildcard_and_qualified_wildcard() {
    let mut db = Database::new();
    db.execute("CREATE TABLE a (x INT)").unwrap();
    db.execute("CREATE TABLE b (y INT)").unwrap();
    db.execute("INSERT INTO a VALUES (1)").unwrap();
    db.execute("INSERT INTO b VALUES (2)").unwrap();
    let rel = db.query("SELECT * FROM a, b").unwrap();
    assert_eq!(rel.rows[0], vec![Value::Int(1), Value::Int(2)]);
    let rel = db.query("SELECT b.* FROM a, b").unwrap();
    assert_eq!(rel.rows[0], vec![Value::Int(2)]);
}

#[test]
fn nested_union_in_cte() {
    let db = db_with_people();
    let rel = db
        .query(
            "WITH u AS (SELECT name FROM person WHERE age < 40
                        UNION ALL SELECT name FROM person WHERE age > 80)
             SELECT COUNT(*) AS n FROM u",
        )
        .unwrap();
    assert_eq!(rel.rows[0][0], Value::Int(2));
}

#[test]
fn cross_type_equality_is_false_not_error() {
    let db = db_with_people();
    let rel = db.query("SELECT name FROM person WHERE name = 36").unwrap();
    assert!(rel.rows.is_empty());
}

#[test]
fn select_without_from() {
    let db = Database::new();
    let rel = db.query("SELECT 1 + 1 AS x, 'a' AS y").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::Int(2), Value::str("a")]]);
}
