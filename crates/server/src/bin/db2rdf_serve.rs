//! `db2rdf-serve` — the SPARQL Protocol endpoint as a CLI.
//!
//! Usage:
//!
//! ```text
//! db2rdf-serve --load data.nt [--addr 127.0.0.1:8098] [flags]
//! db2rdf-serve --open store-dir/ [flags]
//! db2rdf-serve --smoke
//! ```
//!
//! Flags: `--workers N` (default 4), `--max-in-flight N` (default 64),
//! `--max-body-bytes N` (default 1 MiB), `--row-budget N`,
//! `--deadline-ms N`, `--plan-cache N` (plan-cache entries; 0 disables,
//! default keeps the store's configuration — 512).
//!
//! `--load` bulk-loads an N-Triples file into an in-memory entity-layout
//! store; `--open` opens (or creates) a durable store directory, serving
//! whatever was loaded into it. The server runs until stdin reaches EOF or
//! a line is entered, then shuts down gracefully (drains in-flight
//! requests).
//!
//! `--smoke` is the curl-equivalent self-test used by
//! `scripts/verify.sh --server`: boot on an ephemeral port with a tiny
//! built-in dataset, exercise `/sparql` (GET + POST, JSON + TSV),
//! `/healthz`, `/stats`, and the 400 path over real loopback HTTP, then
//! shut down. Exits non-zero on any mismatch.

use std::process::ExitCode;
use std::time::Duration;

use db2rdf::{BulkLoadOptions, RdfStore, SharedStore, StoreConfig};
use rdf::{Term, Triple};
use server::{client, Server, ServerConfig};

struct Args {
    addr: String,
    load: Option<String>,
    open: Option<String>,
    smoke: bool,
    cfg: ServerConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: db2rdf-serve (--load FILE.nt | --open DIR | --smoke) \
         [--addr HOST:PORT] [--workers N] [--max-in-flight N] \
         [--max-body-bytes N] [--row-budget N] [--deadline-ms N] \
         [--plan-cache ENTRIES]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8098".into(),
        load: None,
        open: None,
        smoke: false,
        cfg: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--load" => args.load = Some(value("--load")),
            "--open" => args.open = Some(value("--open")),
            "--smoke" => args.smoke = true,
            "--workers" => args.cfg.workers = parse_num(&value("--workers")),
            "--max-in-flight" => args.cfg.max_in_flight = parse_num(&value("--max-in-flight")),
            "--max-body-bytes" => {
                args.cfg.max_body_bytes = parse_num(&value("--max-body-bytes"))
            }
            "--row-budget" => args.cfg.row_budget = Some(parse_num(&value("--row-budget"))),
            "--deadline-ms" => {
                args.cfg.deadline =
                    Some(Duration::from_millis(parse_num(&value("--deadline-ms"))))
            }
            "--plan-cache" => args.cfg.plan_cache = Some(parse_num(&value("--plan-cache"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s:?}");
        usage()
    })
}

fn build_store(args: &Args) -> Result<RdfStore, String> {
    if let Some(path) = &args.load {
        // Stream the file through the parallel bulk loader: the file is
        // read in line-aligned chunks, so peak memory tracks the dataset's
        // encoded size, never the N-Triples text.
        let file = std::fs::File::open(path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut store = RdfStore::entity();
        let stats = store
            .bulk_load_ntriples(std::io::BufReader::new(file), &BulkLoadOptions::default())
            .map_err(|e| format!("load failed: {e}"))?;
        eprintln!(
            "loaded {} triples from {path} ({:.1}s parse, {:.1}s insert)",
            stats.triples,
            stats.parse_secs,
            stats.insert_secs
        );
        Ok(store)
    } else if let Some(dir) = &args.open {
        let store = RdfStore::open(dir, StoreConfig::default())
            .map_err(|e| format!("cannot open store {dir}: {e}"))?;
        eprintln!("opened durable store {dir} ({} triples)", store.load_report().triples);
        Ok(store)
    } else {
        Err("one of --load, --open, or --smoke is required".into())
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.smoke {
        return smoke();
    }
    let store = match build_store(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("db2rdf-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(SharedStore::new(store), &args.addr, args.cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("db2rdf-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    eprintln!(
        "serving SPARQL on http://{addr}/sparql ({} workers, {} in-flight cap)\n\
         endpoints: /sparql /healthz /stats — press Enter (or close stdin) to stop",
        args.cfg.workers, args.cfg.max_in_flight
    );
    // Block until the operator ends the session; EOF also stops the server
    // so `db2rdf-serve < /dev/null` exits after a graceful drain.
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    eprintln!("shutting down (draining in-flight requests)...");
    server.shutdown();
    eprintln!("bye");
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// --smoke: the scripts/verify.sh --server self-test
// ---------------------------------------------------------------------------

fn demo_triples() -> Vec<Triple> {
    let person = |n: &str| Term::iri(format!("http://example.org/{n}"));
    let knows = Term::iri("http://example.org/knows");
    let name = Term::iri("http://example.org/name");
    vec![
        Triple::new(person("alice"), knows.clone(), person("bob")),
        Triple::new(person("bob"), knows.clone(), person("carol")),
        Triple::new(person("alice"), name.clone(), Term::lit("Alice")),
        Triple::new(person("bob"), name.clone(), Term::lang_lit("Bob", "en")),
        Triple::new(person("carol"), name, Term::lit("Carol \"C\"\n")),
        Triple::new(person("alice"), knows, person("carol")),
    ]
}

/// Pull the unsigned integer immediately following `key` out of a
/// hand-rolled JSON string (the workspace owns its serialization, so the
/// smoke test owns its parsing).
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let rest = json.split(key).nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn check(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        eprintln!("smoke: {what}: ok");
        Ok(())
    } else {
        Err(format!("smoke check failed: {what}"))
    }
}

fn run_smoke() -> Result<(), String> {
    let mut store = RdfStore::entity();
    store.load(&demo_triples()).map_err(|e| e.to_string())?;
    let cfg = ServerConfig { workers: 2, max_in_flight: 8, ..ServerConfig::default() };
    let server = Server::start(SharedStore::new(store), "127.0.0.1:0", cfg)
        .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let io = |e: std::io::Error| format!("http: {e}");

    // /healthz
    let r = client::request(addr, "GET", "/healthz", &[], b"").map_err(io)?;
    check(r.status == 200 && r.text().trim() == "ok", "GET /healthz -> 200 ok")?;

    // GET /sparql, JSON
    let q = "SELECT ?x WHERE { ?x <http://example.org/knows> <http://example.org/bob> }";
    let mut c = client::Client::connect(addr).map_err(io)?;
    let r = c.sparql_get(q, None).map_err(io)?;
    check(
        r.status == 200
            && r.header("content-type") == Some("application/sparql-results+json")
            && r.text().contains("\"type\":\"uri\"")
            && r.text().contains("http://example.org/alice"),
        "GET /sparql -> SPARQL JSON bindings",
    )?;

    // POST /sparql (raw query body), TSV
    let r = c
        .request(
            "POST",
            "/sparql",
            &[
                ("Content-Type", "application/sparql-query"),
                ("Accept", "text/tab-separated-values"),
            ],
            q.as_bytes(),
        )
        .map_err(io)?;
    check(
        r.status == 200
            && r.text().starts_with("?x\n")
            && r.text().contains("<http://example.org/alice>"),
        "POST /sparql -> TSV",
    )?;

    // Malformed SPARQL → 400 with the parser's message
    let r = c.sparql_get("SELECT WHERE {", None).map_err(io)?;
    check(
        r.status == 400 && r.text().contains("SPARQL parse error"),
        "malformed query -> 400 + parser message",
    )?;

    // Zero-triple-pattern queries are valid SPARQL, not 400s.
    let r = c.sparql_get("ASK {}", None).map_err(io)?;
    check(
        r.status == 200 && r.text() == "{\"head\":{},\"boolean\":true}",
        "ASK {} -> trivially true",
    )?;

    // The TSV format has no boolean form: an exclusive TSV demand is 406.
    let r = c
        .sparql_get("ASK { ?s ?p ?o }", Some("text/tab-separated-values"))
        .map_err(io)?;
    check(r.status == 406, "ASK + exclusive TSV -> 406")?;

    // /stats shows the traffic, and the repeated GET/POST of the same
    // query text above must have hit the plan cache.
    let r = client::request(addr, "GET", "/stats", &[], b"").map_err(io)?;
    let body = r.text();
    let hits = body
        .split("\"plan_cache\":")
        .nth(1)
        .and_then(|pc| json_u64(pc, "\"hits\":"))
        .unwrap_or(0);
    check(
        r.status == 200 && body.contains("\"sparql\":{\"requests\":") && hits >= 1,
        "GET /stats -> counters incl. plan-cache hits",
    )?;

    // Memory accounting: resident-set size (best-effort, may be null off
    // Linux) and the term dictionary's compression counters.
    let dict_entries = body
        .split("\"dict\":")
        .nth(1)
        .and_then(|d| json_u64(d, "\"entries\":"))
        .unwrap_or(0);
    check(
        body.contains("\"rss_bytes\":") && dict_entries >= 6,
        "GET /stats -> rss_bytes + dict compression stats",
    )?;

    server.shutdown();
    eprintln!("smoke: OK (server drained and stopped)");
    Ok(())
}

fn smoke() -> ExitCode {
    match run_smoke() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("db2rdf-serve --smoke: {e}");
            ExitCode::FAILURE
        }
    }
}
