//! A minimal HTTP/1.1 layer over `std::net::TcpStream`, owned by this
//! workspace the way PR 1 owned SplitMix64: no external dependencies.
//!
//! Scope: exactly what the SPARQL Protocol endpoint needs — request-line +
//! headers + `Content-Length` bodies, keep-alive connections, CRLF framing,
//! percent-decoding, and `Content-Length`-framed responses. Transfer
//! codings are not implemented: a request carrying `Transfer-Encoding` is
//! answered with 501 Not Implemented (RFC 7230 §3.3.1) and the connection
//! is closed, because the unread body cannot be framed for reuse; a
//! request carrying *both* `Transfer-Encoding` and `Content-Length` is
//! rejected outright (400) — that combination is a request-smuggling
//! vector (RFC 7230 §3.3.3).
//!
//! Hard limits defend the parser itself: request heads over
//! [`MAX_HEAD_BYTES`] are refused (431) before buffering more, bodies
//! are bounded by the caller-supplied cap (413) *before* the body is read,
//! so an oversized upload costs the server one header scan, not the bytes,
//! and the *total* time to receive one request (head + body) is bounded by
//! the caller-supplied deadline (408) — a peer trickling one byte per tick
//! (slowloris) makes steady progress yet can never hold a worker past it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers (bytes).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the peer asked to keep the connection open (HTTP/1.1
    /// default; an explicit `Connection: close` wins).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }

    /// The `Content-Type` without parameters (`; charset=...` stripped),
    /// trimmed and lowercased.
    pub fn media_type(&self) -> Option<String> {
        self.header("content-type")
            .map(|v| v.split(';').next().unwrap_or("").trim().to_ascii_lowercase())
    }
}

/// Why reading the next request off a connection stopped.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF between requests — the peer is done.
    Closed,
    /// Read timeout with no request in progress (idle keep-alive). The
    /// caller decides whether to keep waiting or shut down.
    Idle,
    /// Head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Declared body length exceeded the caller's cap → 413.
    BodyTooLarge { declared: usize, cap: usize },
    /// Total receive time for one request exceeded the caller's deadline
    /// (the slowloris guard) → 408; the connection must close.
    Timeout,
    /// The request declared a `Transfer-Encoding` (chunked or otherwise):
    /// this parser only frames `Content-Length` bodies → 501, and the
    /// connection must close (the unread body cannot be skipped).
    TransferEncodingUnsupported,
    /// Syntactically invalid request → 400.
    Malformed(String),
    /// Transport failure; the connection is unusable.
    Io(std::io::Error),
}

/// One client connection with its unconsumed read buffer (keep-alive
/// requests can arrive pipelined; leftover bytes carry over).
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    pub fn new(stream: TcpStream) -> Conn {
        Conn { stream, buf: Vec::with_capacity(1024) }
    }

    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Pull more bytes into the buffer. `Ok(true)` on progress, `Ok(false)`
    /// on EOF, `Err(Idle)`-style timeouts surface as `Err(None)`.
    fn fill(&mut self) -> Result<Option<usize>, std::io::Error> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Some(0)),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(Some(n))
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Read and parse the next request, buffering the whole body. Blocks up
    /// to the stream's read timeout; see [`ReadError`] for the contract.
    /// `recv_deadline` bounds the wall-clock time from the request's first
    /// byte to its last: it does not start ticking while the connection
    /// idles between keep-alive requests, but once a request is in flight
    /// neither steady trickling nor mid-request stalls can stretch past it.
    pub fn read_request(
        &mut self,
        max_body: usize,
        recv_deadline: Duration,
    ) -> Result<Request, ReadError> {
        let (mut req, mut body) = self.read_request_head(max_body, recv_deadline)?;
        let mut buf = Vec::with_capacity(body.remaining().min(64 * 1024));
        body.read_to_end(&mut buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::TimedOut => ReadError::Timeout,
            std::io::ErrorKind::UnexpectedEof => {
                ReadError::Malformed("unexpected EOF in body".into())
            }
            _ => ReadError::Io(e),
        })?;
        req.body = buf;
        Ok(req)
    }

    /// Read and parse the next request's head (request line + headers),
    /// leaving the body on the wire. Returns the request with an empty
    /// `body` plus a [`BodyReader`] that streams exactly the declared
    /// `Content-Length` bytes under the same receive deadline — the
    /// streaming `POST /insert` path consumes N-Triples through it without
    /// ever holding the full upload. The size cap is still enforced here,
    /// before any body byte is read.
    pub fn read_request_head(
        &mut self,
        max_body: usize,
        recv_deadline: Duration,
    ) -> Result<(Request, BodyReader<'_>), ReadError> {
        let mut started: Option<Instant> =
            if self.buf.is_empty() { None } else { Some(Instant::now()) };
        // Phase 1: accumulate the head (through CRLFCRLF).
        let head_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ReadError::HeadTooLarge);
            }
            if matches!(started, Some(t) if t.elapsed() >= recv_deadline) {
                return Err(ReadError::Timeout);
            }
            match self.fill().map_err(ReadError::Io)? {
                Some(0) if self.buf.is_empty() => return Err(ReadError::Closed),
                Some(0) => return Err(ReadError::Malformed("unexpected EOF in head".into())),
                Some(_) => {
                    started.get_or_insert_with(Instant::now);
                }
                None if self.buf.is_empty() => return Err(ReadError::Idle),
                None => {
                    // Mid-head read timeout: keep waiting under the
                    // receive deadline checked above.
                }
            }
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| ReadError::Malformed("head is not valid UTF-8".into()))?
            .to_string();
        let body_start = head_end + 4;

        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if v.starts_with("HTTP/") => {
                    (m.to_string(), t.to_string(), v)
                }
                _ => {
                    return Err(ReadError::Malformed(format!(
                        "bad request line {request_line:?}"
                    )))
                }
            };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(ReadError::Malformed(format!("unsupported version {version}")));
        }

        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(ReadError::Malformed(format!("bad header line {line:?}")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        // Body framing: Content-Length only. A request with both framing
        // headers is ambiguous (smuggling vector, RFC 7230 §3.3.3) → 400;
        // Transfer-Encoding alone is merely unimplemented → 501.
        let has_transfer_encoding = headers.iter().any(|(n, _)| n == "transfer-encoding");
        if has_transfer_encoding && headers.iter().any(|(n, _)| n == "content-length") {
            return Err(ReadError::Malformed(
                "request carries both Transfer-Encoding and Content-Length".into(),
            ));
        }
        if has_transfer_encoding {
            return Err(ReadError::TransferEncodingUnsupported);
        }
        let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
            None => 0,
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| ReadError::Malformed(format!("bad Content-Length {v:?}")))?,
        };
        if content_length > max_body {
            return Err(ReadError::BodyTooLarge { declared: content_length, cap: max_body });
        }

        // The head is consumed here; body bytes (buffered or still on the
        // wire) belong to the returned reader, on the same receive clock.
        self.buf.drain(..body_start);

        // Split and decode the target.
        let (raw_path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (target.as_str(), None),
        };
        let path = percent_decode(raw_path, false).map_err(ReadError::Malformed)?;
        let query = match raw_query {
            Some(q) => parse_urlencoded(q).map_err(ReadError::Malformed)?,
            None => Vec::new(),
        };

        let started = started.unwrap_or_else(Instant::now);
        let req = Request { method, path, query, headers, body: Vec::new() };
        let body = BodyReader {
            conn: self,
            remaining: content_length,
            started,
            deadline: recv_deadline,
            timed_out: false,
        };
        Ok((req, body))
    }
}

/// Streams one request body — exactly the declared `Content-Length` bytes —
/// off a [`Conn`], honoring the request's receive deadline. Bytes already
/// buffered (pipelining) are served first; bytes belonging to a *following*
/// pipelined request are never consumed. Dropping the reader with bytes
/// unread leaves the connection unframed: call [`BodyReader::drain`] before
/// reusing the connection for another request.
pub struct BodyReader<'a> {
    conn: &'a mut Conn,
    remaining: usize,
    started: Instant,
    deadline: Duration,
    timed_out: bool,
}

impl BodyReader<'_> {
    /// Bytes of the declared body not yet read.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether a read failed on the receive deadline (the slowloris guard):
    /// the right response is 408, not 400.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }

    /// Read and discard the unread remainder so the connection can carry
    /// another request. An error means the connection is unusable.
    pub fn drain(&mut self) -> std::io::Result<()> {
        let mut sink = [0u8; 4096];
        while self.remaining > 0 {
            // `read` returning 0 with bytes remaining is impossible (it
            // errors on EOF), but guard anyway so a regression cannot spin.
            if self.read(&mut sink)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "unexpected EOF draining body",
                ));
            }
        }
        Ok(())
    }
}

impl Read for BodyReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining == 0 || out.is_empty() {
            return Ok(0);
        }
        while self.conn.buf.is_empty() {
            if self.started.elapsed() >= self.deadline {
                self.timed_out = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request body not received within the receive deadline",
                ));
            }
            match self.conn.fill()? {
                Some(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "unexpected EOF in body",
                    ))
                }
                Some(_) => break,
                // Read-timeout tick: loop to re-check the deadline.
                None => {}
            }
        }
        let n = out.len().min(self.conn.buf.len()).min(self.remaining);
        out[..n].copy_from_slice(&self.conn.buf[..n]);
        self.conn.buf.drain(..n);
        self.remaining -= n;
        Ok(n)
    }
}

/// An HTTP response: status + content type + body (always
/// `Content-Length`-framed).
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers, e.g. `Retry-After` on 503 or `Allow` on 405.
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response { status, content_type, body: body.into(), extra: Vec::new() }
    }

    /// A `text/plain` response (the error shape: the message is the body).
    pub fn text(status: u16, message: impl Into<String>) -> Response {
        let mut body = message.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response::new(status, "text/plain; charset=utf-8", body.into_bytes())
    }

    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra.push((name, value.into()));
        self
    }

    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Canonical reason phrases for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Percent-decode a URI component. With `plus_as_space`, `+` decodes to a
/// space (form/query-string convention). Errors on truncated or non-hex
/// escapes and on non-UTF-8 results.
pub fn percent_decode(s: &str, plus_as_space: bool) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated percent-escape in {s:?}"))?;
                let hex = std::str::from_utf8(hex).map_err(|_| "non-ASCII escape".to_string())?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("bad percent-escape %{hex}"))?;
                out.push(byte);
                i += 3;
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| "percent-decoded text is not valid UTF-8".into())
}

/// Percent-encode a URI component (RFC 3986 unreserved set kept verbatim).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Parse `k=v&k2=v2` (query strings and form bodies), percent-decoding
/// both sides with `+`-as-space. A key without `=` gets an empty value.
pub fn parse_urlencoded(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for pair in s.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k, true)?, percent_decode(v, true)?));
    }
    Ok(out)
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_roundtrip() {
        let original = "SELECT ?x WHERE { ?x <http://p> 'a b+c' }";
        let enc = percent_encode(original);
        assert_eq!(percent_decode(&enc, true).unwrap(), original);
    }

    #[test]
    fn plus_decodes_to_space_in_forms() {
        assert_eq!(percent_decode("a+b%20c", true).unwrap(), "a b c");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(percent_decode("%zz", true).is_err());
        assert!(percent_decode("%2", true).is_err());
        assert!(percent_decode("%ff%fe", true).is_err()); // invalid UTF-8
    }

    #[test]
    fn urlencoded_pairs() {
        let pairs = parse_urlencoded("query=SELECT+%3Fx&format=json&flag").unwrap();
        assert_eq!(pairs[0], ("query".into(), "SELECT ?x".into()));
        assert_eq!(pairs[1], ("format".into(), "json".into()));
        assert_eq!(pairs[2], ("flag".into(), String::new()));
    }
}
