//! SPARQL 1.1 Protocol server over the shared RDF store.
//!
//! A std-only HTTP/1.1 endpoint (own parser, `std::net::TcpListener`, fixed
//! worker-thread pool) serving:
//!
//! * `GET /sparql?query=…` and `POST /sparql` (form-encoded or
//!   `application/sparql-query` bodies) — concurrent read queries against a
//!   [`SharedStore`] snapshot (readers run against the last published
//!   immutable state and are never blocked by writers), results in W3C
//!   SPARQL 1.1 JSON or TSV by content negotiation (`Accept` header or
//!   `format=json|tsv` parameter);
//! * `POST /update` (form-encoded or `application/sparql-update` bodies) —
//!   SPARQL 1.1 Update requests, group-committed with whatever concurrent
//!   updates are in flight (one fsync per group; see DESIGN.md §4.12). A
//!   store degraded to read-only refuses them with 503 + `Retry-After`;
//! * `GET /healthz` — liveness probe;
//! * `GET /stats` — load report plus per-endpoint counters, update/group-
//!   commit counters, and latency quantiles from the in-repo histogram.
//!
//! Admission control is layered (DESIGN.md §4.8): a global in-flight cap
//! sheds excess queries with 503 + `Retry-After` *before* they touch the
//! store, and every admitted query runs under the store's existing
//! row-budget and wall-clock-deadline knobs, whose trips also surface as
//! 503 — so one pathological query can burn at most
//! `row_budget`/`deadline`, and at most `max_in_flight` of them can burn
//! it concurrently. Service errors never tear down a worker: store
//! panics are caught at the boundary and become 500s.
//!
//! [`Server::shutdown`] is graceful: the listener stops accepting, workers
//! finish the requests they are executing, idle keep-alive connections are
//! closed at the next read-timeout tick, and the call returns when every
//! worker has exited.

pub mod http;
pub mod metrics;

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use db2rdf::{SharedStore, StoreError};

use http::{parse_urlencoded, Conn, ReadError, Request, Response};
use metrics::EndpointStats;

/// Server tuning knobs. The row budget and deadline are applied to the
/// shared store when the server starts (they are per-query limits; each
/// concurrent query gets its own deadline clock at execution start).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fixed worker-pool width (each worker owns one connection at a time).
    pub workers: usize,
    /// Global cap on queries being evaluated at once; excess get 503.
    pub max_in_flight: usize,
    /// Request-body cap in bytes; larger uploads get 413.
    pub max_body_bytes: usize,
    /// Per-query row budget applied to the store (None = leave as-is).
    pub row_budget: Option<u64>,
    /// Per-query wall-clock deadline applied to the store (None = as-is).
    pub deadline: Option<Duration>,
    /// Plan-cache capacity applied to the store at startup (None = leave
    /// the store's own configuration; `Some(0)` disables caching).
    pub plan_cache: Option<usize>,
    /// Wall-clock bound on receiving one request, first byte to last (the
    /// slowloris guard): a peer trickling bytes gets 408 and is
    /// disconnected when the deadline expires. Idle keep-alive waits
    /// between requests are not counted.
    pub recv_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_in_flight: 64,
            max_body_bytes: 1 << 20,
            row_budget: None,
            deadline: None,
            plan_cache: None,
            recv_deadline: Duration::from_secs(10),
        }
    }
}

/// Poll interval for idle keep-alive connections (also bounds how long
/// shutdown waits for workers parked on an idle connection).
const IDLE_TICK: Duration = Duration::from_millis(100);

struct Inner {
    store: SharedStore,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    /// Requests shed by the in-flight cap (503s from admission control).
    shed: AtomicU64,
    started: Instant,
    sparql: EndpointStats,
    update: EndpointStats,
    insert: EndpointStats,
    healthz: EndpointStats,
    stats: EndpointStats,
    /// 404s/405s — anything that matched no endpoint.
    other: EndpointStats,
}

/// A running SPARQL Protocol server; dropping it without calling
/// [`Server::shutdown`] aborts the process-exit path ungracefully, so call
/// `shutdown()` when done.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving on a fixed pool of worker threads.
    pub fn start(
        store: SharedStore,
        addr: &str,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        {
            let mut guard = store.write();
            if cfg.row_budget.is_some() {
                guard.set_row_budget(cfg.row_budget);
            }
            if cfg.deadline.is_some() {
                guard.set_deadline(cfg.deadline);
            }
            if let Some(entries) = cfg.plan_cache {
                guard.set_plan_cache(entries);
            }
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            store,
            cfg: cfg.clone(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            started: Instant::now(),
            sparql: EndpointStats::default(),
            update: EndpointStats::default(),
            insert: EndpointStats::default(),
            healthz: EndpointStats::default(),
            stats: EndpointStats::default(),
            other: EndpointStats::default(),
        });

        let (tx, rx): (Sender<Conn>, Receiver<Conn>) = std::sync::mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                let rx = rx.clone();
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("sparql-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &tx, &rx))
                    .expect("spawn worker thread")
            })
            .collect();

        let acceptor = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("sparql-accept".into())
                .spawn(move || accept_loop(&inner, &listener, tx))
                .expect("spawn acceptor thread")
        };

        Ok(Server { inner, addr: local, acceptor: Some(acceptor), workers })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current number of queries being evaluated.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests, join
    /// every thread. Idempotent-ish: safe to call once (consumes self).
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept() with a wake-up dial.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Workers finish the request they are serving, close connections
        // at their next turn, and exit within one IDLE_TICK of going idle.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(inner: &Inner, listener: &TcpListener, tx: Sender<Conn>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let _ = stream.set_read_timeout(Some(IDLE_TICK));
                let _ = stream.set_nodelay(true);
                if tx.send(Conn::new(stream)).is_err() {
                    return;
                }
            }
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (e.g. EMFILE): back off briefly.
                std::thread::sleep(IDLE_TICK);
            }
        }
    }
}

/// Workers multiplex connections through the shared ready queue: each turn
/// serves at most one request off a connection, then requeues it. Under
/// more keep-alive connections than workers this degrades to fair
/// round-robin per request instead of convoying whole connections (the
/// p99 at 16 clients is queueing delay, not head-of-line blocking).
fn worker_loop(inner: &Inner, tx: &Sender<Conn>, rx: &Mutex<Receiver<Conn>>) {
    loop {
        // Hold the lock only for the dequeue, never while serving.
        let next = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv_timeout(IDLE_TICK)
        };
        match next {
            Ok(conn) => {
                if let Some(conn) = serve_turn(inner, conn) {
                    if tx.send(conn).is_err() {
                        return;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// One scheduling turn on a connection: serve the next request (waiting at
/// most one [`IDLE_TICK`] for it), answer protocol errors, and return the
/// connection if it should stay open. `None` closes it.
fn serve_turn(inner: &Inner, mut conn: Conn) -> Option<Conn> {
    match conn.read_request_head(inner.cfg.max_body_bytes, inner.cfg.recv_deadline) {
        Ok((mut req, mut body)) => {
            let t0 = Instant::now();
            // During shutdown, finish this request but don't linger.
            let mut keep = req.keep_alive() && !inner.shutdown.load(Ordering::SeqCst);
            let (endpoint, resp) = if req.method == "POST" && req.path == "/insert" {
                // Streaming path: the N-Triples body is parsed as it
                // arrives, never buffered whole. If the handler bailed with
                // body bytes unread, drain them (bounded by the size cap
                // and the receive clock) so the connection stays framed.
                let resp = handle_insert(inner, &req, &mut body);
                if body.remaining() > 0 && body.drain().is_err() {
                    keep = false;
                }
                if body.timed_out() {
                    keep = false;
                }
                (Endpoint::Insert, resp)
            } else {
                // Buffered path: every other endpoint sees the whole body.
                let mut buf = Vec::new();
                match body.read_to_end(&mut buf) {
                    Ok(_) => {
                        req.body = buf;
                        route(inner, &req)
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                        let resp = Response::text(
                            408,
                            format!(
                                "request not received within {:?}: connection closed",
                                inner.cfg.recv_deadline
                            ),
                        );
                        let _ = resp.write_to(conn.stream(), false);
                        return None;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        let resp =
                            Response::text(400, "malformed request: unexpected EOF in body");
                        let _ = resp.write_to(conn.stream(), false);
                        return None;
                    }
                    Err(_) => return None,
                }
            };
            endpoint_stats(inner, endpoint).record(resp.status, t0.elapsed());
            if resp.write_to(conn.stream(), keep).is_err() || !keep {
                return None;
            }
            Some(conn)
        }
        Err(ReadError::Idle) => {
            if inner.shutdown.load(Ordering::SeqCst) {
                None
            } else {
                Some(conn)
            }
        }
        Err(ReadError::Closed) | Err(ReadError::Io(_)) => None,
        Err(ReadError::HeadTooLarge) => {
            let resp = Response::text(431, "request head too large");
            let _ = resp.write_to(conn.stream(), false);
            None
        }
        Err(ReadError::BodyTooLarge { declared, cap }) => {
            let resp = Response::text(
                413,
                format!("request body of {declared} bytes exceeds the {cap}-byte limit"),
            );
            let _ = resp.write_to(conn.stream(), false);
            None
        }
        Err(ReadError::Timeout) => {
            // Slowloris guard: the request trickled past the receive
            // deadline. Answer 408 and disconnect — the unread remainder
            // cannot be framed for another request.
            let resp = Response::text(
                408,
                format!(
                    "request not received within {:?}: connection closed",
                    inner.cfg.recv_deadline
                ),
            );
            let _ = resp.write_to(conn.stream(), false);
            None
        }
        Err(ReadError::TransferEncodingUnsupported) => {
            // RFC 7230 §3.3.1: an unimplemented transfer coding is 501.
            // The connection must close — the body was never read, so the
            // stream cannot be re-framed for another request.
            let resp = Response::text(
                501,
                "Transfer-Encoding is not implemented: send a Content-Length-framed body",
            );
            let _ = resp.write_to(conn.stream(), false);
            None
        }
        Err(ReadError::Malformed(m)) => {
            let resp = Response::text(400, format!("malformed request: {m}"));
            let _ = resp.write_to(conn.stream(), false);
            None
        }
    }
}

enum Endpoint {
    Sparql,
    Update,
    Insert,
    Healthz,
    Stats,
    Other,
}

fn endpoint_stats(inner: &Inner, e: Endpoint) -> &EndpointStats {
    match e {
        Endpoint::Sparql => &inner.sparql,
        Endpoint::Update => &inner.update,
        Endpoint::Insert => &inner.insert,
        Endpoint::Healthz => &inner.healthz,
        Endpoint::Stats => &inner.stats,
        Endpoint::Other => &inner.other,
    }
}

fn route(inner: &Inner, req: &Request) -> (Endpoint, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") | ("HEAD", "/healthz") => {
            // Degraded is still alive (reads keep working), so the probe
            // stays 200 — the body tells orchestration *which* alive.
            let body = if inner.store.is_read_only() { "degraded" } else { "ok" };
            (Endpoint::Healthz, Response::text(200, body))
        }
        ("GET", "/stats") => (
            Endpoint::Stats,
            Response::new(200, "application/json", stats_json(inner).into_bytes()),
        ),
        // POST /insert is routed before the body is buffered (see
        // `serve_turn`); only non-POST methods reach this table.
        (_, "/insert") => (
            Endpoint::Insert,
            Response::text(405, "use POST with an N-Triples body on /insert")
                .with_header("Allow", "POST"),
        ),
        ("POST", "/update") => (Endpoint::Update, handle_update(inner, req)),
        (_, "/update") => (
            Endpoint::Update,
            Response::text(405, "use POST with a SPARQL Update body on /update")
                .with_header("Allow", "POST"),
        ),
        (_, "/sparql") => (Endpoint::Sparql, handle_sparql(inner, req)),
        ("GET", _) | ("HEAD", _) | ("POST", _) => {
            (Endpoint::Other, Response::text(404, format!("no such path {:?}", req.path)))
        }
        (m, _) => (
            Endpoint::Other,
            Response::text(405, format!("method {m} not supported"))
                .with_header("Allow", "GET, POST, HEAD"),
        ),
    }
}

/// Result formats the endpoint can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Json,
    Tsv,
}

const JSON_MEDIA: &str = "application/sparql-results+json";
const TSV_MEDIA: &str = "text/tab-separated-values; charset=utf-8";

/// The negotiated result format, plus whether the client would *also*
/// accept JSON — needed because the TSV format has no boolean form, so an
/// ASK result steered to TSV falls back to JSON when the client allows it
/// and is refused with 406 when it demanded TSV exclusively.
#[derive(Debug, Clone, Copy)]
struct Negotiated {
    format: Format,
    json_ok: bool,
}

/// Pick a result format from the `format` parameter or `Accept` header.
/// Unknown explicit requests are a 406 (per the service-boundary error
/// contract; the supported types are listed in the message).
fn negotiate_format(req: &Request) -> Result<Negotiated, Response> {
    if let Some(f) = req.query_param("format") {
        return match f.to_ascii_lowercase().as_str() {
            "json" => Ok(Negotiated { format: Format::Json, json_ok: true }),
            // An explicit format=tsv is a hard demand: no JSON fallback.
            "tsv" => Ok(Negotiated { format: Format::Tsv, json_ok: false }),
            other => Err(Response::text(
                406,
                format!("unknown format {other:?}: use format=json or format=tsv"),
            )),
        };
    }
    let Some(accept) = req.header("accept") else {
        return Ok(Negotiated { format: Format::Json, json_ok: true });
    };
    let mut wildcard = false;
    let mut json = false;
    let mut first: Option<Format> = None;
    for part in accept.split(',') {
        let media = part.split(';').next().unwrap_or("").trim().to_ascii_lowercase();
        match media.as_str() {
            "application/sparql-results+json" | "application/json" => {
                json = true;
                first.get_or_insert(Format::Json);
            }
            "text/tab-separated-values" => {
                first.get_or_insert(Format::Tsv);
            }
            "*/*" | "application/*" | "text/*" => wildcard = true,
            _ => {}
        }
    }
    match first {
        Some(format) => Ok(Negotiated { format, json_ok: json || wildcard }),
        None if wildcard => Ok(Negotiated { format: Format::Json, json_ok: true }),
        None => Err(Response::text(
            406,
            format!(
                "no acceptable result media type in {accept:?}: supported are \
                 application/sparql-results+json and text/tab-separated-values"
            ),
        )),
    }
}

/// Extract the SPARQL query text per the SPARQL 1.1 Protocol: the `query`
/// parameter on GET; form-encoded or `application/sparql-query` bodies on
/// POST.
fn extract_query(req: &Request) -> Result<String, Response> {
    match req.method.as_str() {
        "GET" => match req.query_param("query") {
            Some(q) => Ok(q.to_string()),
            None => Err(Response::text(400, "missing required parameter: query")),
        },
        "POST" => {
            let media = req.media_type().unwrap_or_default();
            match media.as_str() {
                "application/x-www-form-urlencoded" | "" => {
                    let body = std::str::from_utf8(&req.body).map_err(|_| {
                        Response::text(400, "form body is not valid UTF-8")
                    })?;
                    let pairs = parse_urlencoded(body)
                        .map_err(|e| Response::text(400, format!("bad form body: {e}")))?;
                    match pairs.into_iter().find(|(k, _)| k == "query") {
                        Some((_, q)) => Ok(q),
                        None => Err(Response::text(400, "missing required parameter: query")),
                    }
                }
                "application/sparql-query" => match std::str::from_utf8(&req.body) {
                    Ok(q) => Ok(q.to_string()),
                    Err(_) => Err(Response::text(400, "query body is not valid UTF-8")),
                },
                other => Err(Response::text(
                    406,
                    format!(
                        "unsupported request media type {other:?}: use \
                         application/x-www-form-urlencoded or application/sparql-query"
                    ),
                )),
            }
        }
        m => Err(Response::text(405, format!("method {m} not allowed on /sparql"))
            .with_header("Allow", "GET, POST")),
    }
}

/// Extract the SPARQL Update text per the SPARQL 1.1 Protocol: POST only,
/// with a form-encoded `update` parameter or an `application/sparql-update`
/// body.
fn extract_update(req: &Request) -> Result<String, Response> {
    let media = req.media_type().unwrap_or_default();
    match media.as_str() {
        "application/x-www-form-urlencoded" | "" => {
            let body = std::str::from_utf8(&req.body)
                .map_err(|_| Response::text(400, "form body is not valid UTF-8"))?;
            let pairs = parse_urlencoded(body)
                .map_err(|e| Response::text(400, format!("bad form body: {e}")))?;
            match pairs.into_iter().find(|(k, _)| k == "update") {
                Some((_, u)) => Ok(u),
                None => Err(Response::text(400, "missing required parameter: update")),
            }
        }
        "application/sparql-update" => match std::str::from_utf8(&req.body) {
            Ok(u) => Ok(u.to_string()),
            Err(_) => Err(Response::text(400, "update body is not valid UTF-8")),
        },
        other => Err(Response::text(
            406,
            format!(
                "unsupported request media type {other:?}: use \
                 application/x-www-form-urlencoded or application/sparql-update"
            ),
        )),
    }
}

/// RAII admission slot: decrements the in-flight gauge on every exit path.
struct Admission<'a>(&'a AtomicUsize);

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_sparql(inner: &Inner, req: &Request) -> Response {
    let negotiated = match negotiate_format(req) {
        Ok(n) => n,
        Err(resp) => return resp,
    };
    let sparql = match extract_query(req) {
        Ok(q) => q,
        Err(resp) => return resp,
    };

    // Admission control: bounded concurrent evaluation, shed the rest.
    let prev = inner.in_flight.fetch_add(1, Ordering::SeqCst);
    let slot = Admission(&inner.in_flight);
    if prev >= inner.cfg.max_in_flight {
        drop(slot);
        inner.shed.fetch_add(1, Ordering::Relaxed);
        return Response::text(
            503,
            format!(
                "server overloaded: {} queries in flight (cap {})",
                prev + 1,
                inner.cfg.max_in_flight
            ),
        )
        .with_header("Retry-After", "1");
    }

    // The store boundary: catch panics so one bad query cannot take down a
    // worker (the audit in DESIGN.md §4.8 found no reachable panic in the
    // translate/query paths, but the server must not bet its workers on
    // that invariant holding forever).
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        inner.store.query(&sparql)
    }));
    drop(slot);

    match result {
        Ok(Ok(solutions)) => {
            // The W3C TSV format defines no boolean form: an ASK result
            // negotiated to TSV steers to JSON when the client also
            // accepts it, and is refused otherwise.
            let format = match (solutions.boolean.is_some(), negotiated.format) {
                (true, Format::Tsv) if negotiated.json_ok => Format::Json,
                (true, Format::Tsv) => {
                    return Response::text(
                        406,
                        "the SPARQL TSV result format does not define ASK results: \
                         accept application/sparql-results+json for boolean queries",
                    )
                }
                (_, f) => f,
            };
            match format {
                Format::Json => {
                    Response::new(200, JSON_MEDIA, solutions.to_json().into_bytes())
                }
                Format::Tsv => Response::new(200, TSV_MEDIA, solutions.to_tsv().into_bytes()),
            }
        }
        Ok(Err(e)) => store_error_response(&e),
        Err(_) => Response::text(500, "internal error: query evaluation panicked"),
    }
}

/// Handle `POST /update`: a SPARQL 1.1 Update request, applied through the
/// store's group-commit queue — the response is sent only after the
/// request's group fsynced, so a 200 means durable. Shares the global
/// in-flight admission cap with `/sparql` (an update occupies a worker just
/// the same); a degraded store refuses before parsing with 503 +
/// `Retry-After`.
fn handle_update(inner: &Inner, req: &Request) -> Response {
    let text = match extract_update(req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    if inner.store.is_read_only() {
        return degraded_response();
    }

    let prev = inner.in_flight.fetch_add(1, Ordering::SeqCst);
    let slot = Admission(&inner.in_flight);
    if prev >= inner.cfg.max_in_flight {
        drop(slot);
        inner.shed.fetch_add(1, Ordering::Relaxed);
        return Response::text(
            503,
            format!(
                "server overloaded: {} requests in flight (cap {})",
                prev + 1,
                inner.cfg.max_in_flight
            ),
        )
        .with_header("Retry-After", "1");
    }

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        inner.store.update(&text)
    }));
    drop(slot);

    match result {
        Ok(Ok(outcome)) => Response::new(
            200,
            "application/json",
            format!(
                "{{\"inserted\":{},\"deleted\":{}}}\n",
                outcome.inserted, outcome.deleted
            )
            .into_bytes(),
        ),
        Ok(Err(e)) => store_error_response(&e),
        Err(_) => Response::text(500, "internal error: update evaluation panicked"),
    }
}

/// Handle `POST /insert`: an N-Triples body, one triple per line, loaded
/// under the store's write lock. The body is *streamed* — parsed in
/// line-aligned chunks as it arrives off the socket (`rdf::NtStream`), so
/// an upload near the size cap costs chunk-sized memory, not the body; the
/// cap itself was enforced from `Content-Length` before any body byte was
/// read. A store that degraded to read-only after a durability fault
/// refuses the mutation with 503 + `Retry-After` (an operator restoring
/// the volume fixes it; silently dropping writes never does) — checked up
/// front so a doomed upload is rejected before parsing, and enforced again
/// per-triple in case degradation races the check. Triples already
/// inserted when a later line fails stay inserted, exactly as the buffered
/// handler behaved on a mid-batch store error.
fn handle_insert(inner: &Inner, req: &Request, body: &mut http::BodyReader<'_>) -> Response {
    match req.media_type().as_deref() {
        None | Some("application/n-triples" | "text/plain") => {}
        Some(other) => {
            return Response::text(
                406,
                format!("unsupported media type {other:?}: send application/n-triples"),
            )
        }
    }
    if inner.store.is_read_only() {
        return degraded_response();
    }
    // Chunked: each flush takes the write lock and publishes a reader
    // snapshot once per INSERT_CHUNK triples instead of once per triple.
    const INSERT_CHUNK: usize = 512;
    let mut received = 0usize;
    let mut inserted = 0u64;
    let mut chunk: Vec<rdf::Triple> = Vec::with_capacity(INSERT_CHUNK);
    let flush = |chunk: &mut Vec<rdf::Triple>| -> Result<u64, Response> {
        let n = match inner.store.insert_many(chunk) {
            Ok(n) => n,
            Err(e) if e.is_read_only() => return Err(degraded_response()),
            Err(e) => return Err(store_error_response(&e)),
        };
        chunk.clear();
        Ok(n)
    };
    for quad in rdf::NtStream::new(&mut *body) {
        let quad = match quad {
            Ok(q) => q,
            Err(_) if body.timed_out() => {
                return Response::text(
                    408,
                    format!(
                        "request body not received within {:?}: connection closed",
                        inner.cfg.recv_deadline
                    ),
                );
            }
            Err(e) => return Response::text(400, format!("bad N-Triples body: {e}")),
        };
        received += 1;
        chunk.push(quad.triple);
        if chunk.len() >= INSERT_CHUNK {
            match flush(&mut chunk) {
                Ok(n) => inserted += n,
                Err(resp) => return resp,
            }
        }
    }
    match flush(&mut chunk) {
        Ok(n) => inserted += n,
        Err(resp) => return resp,
    }
    Response::new(
        200,
        "application/json",
        format!("{{\"received\":{received},\"inserted\":{inserted}}}\n").into_bytes(),
    )
}

/// The mutation-refused shape for a read-only (degraded) store.
fn degraded_response() -> Response {
    Response::text(
        503,
        "store is read-only: durability degraded after an I/O failure; \
         mutations are refused until the store is reopened on healthy storage",
    )
    .with_header("Retry-After", "5")
}

/// Map a store error onto the HTTP boundary: client mistakes are 400 with
/// the parser/translator message, resource-limit trips are 503 (the query
/// was shed by admission control's budget/deadline layer), a degraded
/// store's write refusal is 503 + `Retry-After`, the rest 500.
fn store_error_response(e: &StoreError) -> Response {
    match e {
        StoreError::Sparql(_) | StoreError::Unsupported(_) => {
            Response::text(400, e.to_string())
        }
        _ if e.is_timeout() => Response::text(
            503,
            format!("query exceeded the server's evaluation limits: {e}"),
        )
        .with_header("Retry-After", "1"),
        _ if e.is_read_only() => degraded_response(),
        StoreError::Sql(_) => Response::text(500, e.to_string()),
    }
}

/// Best-effort resident-set size of this process in bytes, from Linux's
/// `/proc/self/status` (`VmRSS:` line, reported in kB). Returns `None`
/// anywhere the procfs line is missing or unparsable — `/stats` then
/// reports `"rss_bytes":null` rather than a guess.
fn resident_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn stats_json(inner: &Inner) -> String {
    let report = inner.store.load_report();
    let plan_cache = match inner.store.plan_cache_stats() {
        Some(s) => format!(
            "{{\"entries\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\
             \"evictions\":{},\"invalidations\":{},\"invalidations_avoided\":{}}}",
            s.entries,
            s.capacity,
            s.hits,
            s.misses,
            s.evictions,
            s.invalidations,
            s.invalidations_avoided,
        ),
        None => "null".into(),
    };
    let u = inner.store.update_stats();
    let batches: Vec<String> = db2rdf::BATCH_BUCKET_LABELS
        .iter()
        .zip(u.batch_sizes)
        .map(|(label, n)| format!("\"{label}\":{n}"))
        .collect();
    let updates = format!(
        "{{\"groups\":{},\"applied\":{},\"failed\":{},\"batch_sizes\":{{{}}}}}",
        u.groups,
        u.applied,
        u.failed,
        batches.join(","),
    );
    let dict = inner.store.dict_stats();
    let rss = match resident_bytes() {
        Some(b) => b.to_string(),
        None => "null".into(),
    };
    format!(
        "{{\"uptime_secs\":{},\"triples\":{},\"workers\":{},\"exec_threads\":{},\
         \"in_flight\":{},\
         \"max_in_flight\":{},\"shed\":{},\"epoch\":{},\"degraded\":{},\"rss_bytes\":{rss},\
         \"dict\":{{\"entries\":{},\"raw_bytes\":{},\"compressed_bytes\":{}}},\
         \"plan_cache\":{},\"updates\":{},\
         \"endpoints\":{{\"sparql\":{},\"update\":{},\"insert\":{},\"healthz\":{},\
         \"stats\":{},\"other\":{}}}}}\n",
        inner.started.elapsed().as_secs(),
        report.triples,
        inner.cfg.workers,
        inner.store.threads(),
        inner.in_flight.load(Ordering::Relaxed),
        inner.cfg.max_in_flight,
        inner.shed.load(Ordering::Relaxed),
        inner.store.epoch(),
        inner.store.is_read_only(),
        dict.entries,
        dict.raw_bytes,
        dict.compressed_bytes,
        plan_cache,
        updates,
        inner.sparql.to_json(),
        inner.update.to_json(),
        inner.insert.to_json(),
        inner.healthz.to_json(),
        inner.stats.to_json(),
        inner.other.to_json(),
    )
}

// ---------------------------------------------------------------------------
// Minimal HTTP client — used by the integration tests, the loopback
// throughput bench, and `db2rdf-serve --smoke` (the curl stand-in).
// ---------------------------------------------------------------------------

pub mod client {
    use super::*;
    use std::io::Read;

    /// A parsed HTTP response.
    #[derive(Debug)]
    pub struct HttpResponse {
        pub status: u16,
        pub headers: Vec<(String, String)>,
        pub body: Vec<u8>,
    }

    impl HttpResponse {
        pub fn text(&self) -> String {
            String::from_utf8_lossy(&self.body).into_owned()
        }

        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
        }
    }

    /// A keep-alive client bound to one server address.
    pub struct Client {
        addr: SocketAddr,
        stream: TcpStream,
    }

    impl Client {
        pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            Ok(Client { addr, stream })
        }

        /// Issue one request on the persistent connection.
        pub fn request(
            &mut self,
            method: &str,
            path: &str,
            headers: &[(&str, &str)],
            body: &[u8],
        ) -> std::io::Result<HttpResponse> {
            let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
            for (n, v) in headers {
                head.push_str(&format!("{n}: {v}\r\n"));
            }
            head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
            self.stream.write_all(head.as_bytes())?;
            self.stream.write_all(body)?;
            self.stream.flush()?;
            read_response(&mut self.stream)
        }

        /// Convenience: GET `/sparql` with a query and optional Accept.
        pub fn sparql_get(
            &mut self,
            sparql: &str,
            accept: Option<&str>,
        ) -> std::io::Result<HttpResponse> {
            let path = format!("/sparql?query={}", http::percent_encode(sparql));
            let headers: Vec<(&str, &str)> = match accept {
                Some(a) => vec![("Accept", a)],
                None => vec![],
            };
            self.request("GET", &path, &headers, b"")
        }
    }

    /// One-shot request on a fresh connection.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        Client::connect(addr)?.request(method, path, headers, body)
    }

    /// Retry policy for [`request_with_retry`]: capped exponential backoff
    /// with deterministic jitter. The jitter is a pure function of
    /// `(seed, attempt)`, so a given policy always produces the same
    /// schedule — testable without clocks — while different seeds (e.g.
    /// per client) decorrelate retry storms.
    #[derive(Debug, Clone)]
    pub struct RetryPolicy {
        /// Total attempts, including the first (0 and 1 both mean "no
        /// retries").
        pub max_attempts: u32,
        /// Backoff before the first retry; doubles each retry after that.
        pub base: Duration,
        /// Upper bound on any single delay — also caps an honored
        /// `Retry-After`, so a misbehaving server cannot park the client.
        pub cap: Duration,
        /// Jitter seed.
        pub seed: u64,
    }

    impl Default for RetryPolicy {
        fn default() -> Self {
            RetryPolicy {
                max_attempts: 4,
                base: Duration::from_millis(50),
                cap: Duration::from_secs(2),
                seed: 0,
            }
        }
    }

    /// The delay before retry number `attempt` (1-based: `attempt = 1`
    /// follows the first failure): `base * 2^(attempt-1)` capped at
    /// `policy.cap`, then jittered into the upper half `[d/2, d]` so
    /// synchronized clients spread out without ever waiting longer than
    /// the uncapped schedule promises.
    pub fn retry_delay(policy: &RetryPolicy, attempt: u32) -> Duration {
        let exp = policy.base.saturating_mul(1u32 << attempt.saturating_sub(1).min(20));
        let capped = exp.min(policy.cap);
        // SplitMix64 over (seed, attempt): deterministic jitter.
        let mut z = policy
            .seed
            .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let nanos = capped.as_nanos() as u64;
        Duration::from_nanos(nanos / 2 + z % (nanos / 2 + 1))
    }

    /// The full delay schedule a policy will use (one entry per retry).
    pub fn backoff_schedule(policy: &RetryPolicy) -> Vec<Duration> {
        (1..policy.max_attempts.max(1)).map(|a| retry_delay(policy, a)).collect()
    }

    /// [`request`] with retries: a fresh connection per attempt, retrying
    /// transport errors and 503 responses. A numeric `Retry-After` on a
    /// 503 overrides the computed backoff (capped at `policy.cap` — the
    /// server's hint is advice, not a hold). Anything else — including
    /// 4xx/5xx that retrying cannot fix — is returned as-is.
    pub fn request_with_retry(
        addr: SocketAddr,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
        policy: &RetryPolicy,
    ) -> std::io::Result<HttpResponse> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = request(addr, method, path, headers, body);
            let retryable = match &result {
                Ok(resp) => resp.status == 503,
                Err(_) => true,
            };
            if !retryable || attempt >= policy.max_attempts.max(1) {
                return result;
            }
            let mut delay = retry_delay(policy, attempt);
            if let Ok(resp) = &result {
                if let Some(secs) =
                    resp.header("retry-after").and_then(|v| v.trim().parse::<u64>().ok())
                {
                    delay = Duration::from_secs(secs).min(policy.cap);
                }
            }
            std::thread::sleep(delay);
        }
    }

    fn read_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut buf = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("EOF before response head"));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| bad("response head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((n, v)) = line.split_once(':') {
                headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let len: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("missing Content-Length"))?;
        let body_start = head_end + 4;
        let mut body = buf[body_start..].to_vec();
        while body.len() < len {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(bad("EOF before full body"));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(len);
        Ok(HttpResponse { status, headers, body })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn backoff_schedule_is_deterministic() {
            let policy = RetryPolicy { max_attempts: 6, seed: 7, ..Default::default() };
            let a = backoff_schedule(&policy);
            let b = backoff_schedule(&policy);
            assert_eq!(a, b, "same seed must give the same schedule");
            assert_eq!(a.len(), 5, "one delay per retry");
            let other = backoff_schedule(&RetryPolicy { seed: 8, ..policy.clone() });
            assert_ne!(a[..other.len().min(a.len())], other[..], "different seeds decorrelate");
        }

        #[test]
        fn delays_grow_exponentially_within_bounds() {
            let policy = RetryPolicy {
                max_attempts: 16,
                base: Duration::from_millis(100),
                cap: Duration::from_secs(2),
                seed: 42,
            };
            for attempt in 1..=15u32 {
                let d = retry_delay(&policy, attempt);
                let exp = policy
                    .base
                    .saturating_mul(1 << (attempt - 1).min(20))
                    .min(policy.cap);
                assert!(d <= exp, "attempt {attempt}: {d:?} exceeds the uncapped bound {exp:?}");
                assert!(
                    d >= exp / 2,
                    "attempt {attempt}: {d:?} jittered below half of {exp:?}"
                );
                assert!(d <= policy.cap, "attempt {attempt}: {d:?} exceeds the cap");
            }
            // Once the exponential passes the cap, every delay sits in the
            // cap's upper half regardless of how large `attempt` grows.
            assert!(retry_delay(&policy, 30) >= policy.cap / 2);
        }
    }
}
