//! Lock-free request metrics: a log₂-bucketed latency histogram and
//! per-endpoint counters, all plain atomics so the hot path never takes a
//! lock. Quantiles are read from bucket upper bounds — at worst a 2×
//! overestimate, which is the right bias for a p99 used as an overload
//! signal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two microsecond buckets: bucket `i` counts latencies
/// in `[2^i, 2^(i+1))` µs (bucket 0 also takes 0µs); the last bucket is
/// unbounded above (~ >9 minutes).
const BUCKETS: usize = 30;

#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    fn bucket_index(micros: u64) -> usize {
        if micros == 0 {
            return 0;
        }
        ((63 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (0 < q ≤ 1) in microseconds: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q · total)`.
    /// Returns 0 when nothing was recorded.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// Counters for one HTTP endpoint.
#[derive(Default)]
pub struct EndpointStats {
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    pub latency: LatencyHistogram,
}

impl EndpointStats {
    /// Record one served request (any status; 4xx/5xx also bump `errors`).
    pub fn record(&self, status: u16, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }

    /// Hand-rolled JSON object (the workspace owns its serialization).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"errors\":{},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{}}}",
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.latency.mean_micros(),
            self.latency.quantile_micros(0.50),
            self.latency.quantile_micros(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_micros(0.5), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64,128)
        }
        h.record(Duration::from_millis(50)); // bucket [32768,65536)
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_micros(0.50);
        assert!((100..=256).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_micros(0.99);
        assert!(p99 <= 256, "p99 excludes the single outlier, got {p99}");
        let p100 = h.quantile_micros(1.0);
        assert!(p100 >= 50_000, "max covers the outlier, got {p100}");
    }

    #[test]
    fn endpoint_stats_count_errors() {
        let s = EndpointStats::default();
        s.record(200, Duration::from_micros(10));
        s.record(400, Duration::from_micros(10));
        s.record(503, Duration::from_micros(10));
        let json = s.to_json();
        assert!(json.contains("\"requests\":3"), "{json}");
        assert!(json.contains("\"errors\":2"), "{json}");
    }
}
