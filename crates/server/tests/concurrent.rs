//! Concurrency test (ISSUE satellite): one writer thread mutating the
//! shared store through `insert`/`delete` batches while reader threads
//! hammer `/sparql` over real loopback HTTP. Every response must be either
//! a consistent result — the store's atomic-batch states are the only
//! observable ones — or a clean 503 from admission control; never a torn
//! row, a mixed state, or a dropped connection.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use db2rdf::{RdfStore, SharedStore};
use rdf::{Term, Triple};
use server::client::Client;
use server::{Server, ServerConfig};

fn person(n: usize) -> Term {
    Term::iri(format!("http://ex/p{n}"))
}

const BATCH: usize = 5;

/// The batch the writer inserts then deletes, as one group: `marker knows
/// p0..p4`. Readers count `?x` for the marker subject; consistency means
/// the count is always 0 or 5 — a batch is observed wholly or not at all.
fn batch_triples() -> Vec<Triple> {
    let marker = Term::iri("http://ex/marker");
    let knows = Term::iri("http://ex/knows");
    (0..BATCH).map(|i| Triple::new(marker.clone(), knows.clone(), person(i))).collect()
}

#[test]
fn readers_never_observe_torn_batches() {
    // Base data so the store is loaded and queries have work to do.
    let knows = Term::iri("http://ex/knows");
    let base: Vec<Triple> = (0..50)
        .map(|i| Triple::new(person(100 + i), knows.clone(), person(101 + i)))
        .collect();
    let mut store = RdfStore::entity();
    store.load(&base).unwrap();

    let shared = SharedStore::new(store);
    let cfg = ServerConfig { workers: 6, max_in_flight: 4, ..ServerConfig::default() };
    let server = Server::start(shared.clone(), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let ok_responses = Arc::new(AtomicU64::new(0));
    let shed_responses = Arc::new(AtomicU64::new(0));

    // Writer: insert the whole batch, then delete it, in a loop — each
    // five-triple batch applied under ONE write-lock acquisition, so the
    // only states a reader may observe are "batch fully present" and
    // "batch fully absent". A count of 1..4 would be a torn read.
    let writer_store = shared.clone();
    let writer_stop = stop.clone();
    let writer = std::thread::spawn(move || {
        let batch = batch_triples();
        let mut rounds = 0u32;
        while !writer_stop.load(Ordering::Relaxed) {
            {
                let mut guard = writer_store.write();
                for t in &batch {
                    guard.insert(t).expect("insert");
                }
            }
            {
                let mut guard = writer_store.write();
                for t in &batch {
                    assert!(guard.delete(t).expect("delete"), "batch triple existed");
                }
            }
            rounds += 1;
        }
        rounds
    });

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            let ok = ok_responses.clone();
            let shed = shed_responses.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let q = "SELECT ?x WHERE { <http://ex/marker> <http://ex/knows> ?x }";
                while !stop.load(Ordering::Relaxed) {
                    let resp = client.sparql_get(q, None).expect("response, not a torn stream");
                    match resp.status {
                        200 => {
                            let body = resp.text();
                            let count = body.matches("\"type\":\"uri\"").count();
                            assert!(
                                count == 0 || count == BATCH,
                                "torn read: observed {count} of {BATCH} batch rows: {body}"
                            );
                            assert!(body.ends_with("]}}"), "truncated body: {body}");
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        503 => {
                            // Clean shed: admission control, body intact.
                            assert!(resp.text().contains("overloaded"), "{}", resp.text());
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected status {other}: {}", resp.text()),
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(800));
    stop.store(true, Ordering::Relaxed);
    let rounds = writer.join().expect("writer");
    for r in readers {
        r.join().expect("reader");
    }
    let ok = ok_responses.load(Ordering::Relaxed);
    assert!(ok > 0, "no successful reads");
    assert!(rounds > 0, "writer made no progress");
    server.shutdown();

    // After the dust settles the batch is fully deleted: count is 0.
    let sols = shared
        .query("SELECT ?x WHERE { <http://ex/marker> <http://ex/knows> ?x }")
        .unwrap();
    assert_eq!(sols.len(), 0);
}

#[test]
fn overload_sheds_cleanly_under_fire() {
    // Cap 1 with many parallel clients: some requests must shed with 503,
    // and every shed response is well-formed (the stats endpoint agrees).
    let knows = Term::iri("http://ex/knows");
    let base: Vec<Triple> = (0..60)
        .map(|i| Triple::new(person(i), knows.clone(), person(i + 1)))
        .collect();
    let mut store = RdfStore::entity();
    store.load(&base).unwrap();
    let cfg = ServerConfig { workers: 8, max_in_flight: 1, ..ServerConfig::default() };
    let server = Server::start(SharedStore::new(store), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    let shed = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let shed = shed.clone();
            let served = served.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // A join query slow enough to overlap across clients.
                let q = "SELECT ?a ?c WHERE { ?a <http://ex/knows> ?b . ?b <http://ex/knows> ?c }";
                for _ in 0..25 {
                    let resp = client.sparql_get(q, None).expect("response");
                    match resp.status {
                        200 => {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        503 => {
                            assert_eq!(resp.header("retry-after"), Some("1"));
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected status {other}: {}", resp.text()),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client");
    }
    assert!(served.load(Ordering::Relaxed) > 0, "nothing served");
    assert!(shed.load(Ordering::Relaxed) > 0, "cap 1 with 8 clients never shed");
    server.shutdown();
}
