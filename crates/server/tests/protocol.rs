//! SPARQL Protocol endpoint tests over real loopback HTTP: request
//! parsing, content negotiation, the service-boundary error contract
//! (400/406/413/404/405/503), keep-alive, and graceful shutdown.

use std::time::Duration;

use db2rdf::{RdfStore, SharedStore};
use rdf::{Term, Triple};
use server::client::{self, Client};
use server::http::percent_encode;
use server::{Server, ServerConfig};

fn demo_store() -> SharedStore {
    let person = |n: &str| Term::iri(format!("http://ex/{n}"));
    let knows = Term::iri("http://ex/knows");
    let name = Term::iri("http://ex/name");
    let mut store = RdfStore::entity();
    store
        .load(&[
            Triple::new(person("alice"), knows.clone(), person("bob")),
            Triple::new(person("bob"), knows.clone(), person("carol")),
            Triple::new(person("alice"), knows, person("carol")),
            Triple::new(person("alice"), name.clone(), Term::lit("Alice")),
            Triple::new(person("bob"), name, Term::lang_lit("Bob", "en")),
        ])
        .unwrap();
    SharedStore::new(store)
}

fn boot(cfg: ServerConfig) -> Server {
    Server::start(demo_store(), "127.0.0.1:0", cfg).expect("bind ephemeral port")
}

const Q_KNOWS: &str = "SELECT ?x WHERE { ?x <http://ex/knows> <http://ex/carol> }";

#[test]
fn get_query_returns_w3c_json() {
    let server = boot(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let r = c.sparql_get(Q_KNOWS, None).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("content-type"), Some("application/sparql-results+json"));
    let body = r.text();
    assert!(body.starts_with("{\"head\":{\"vars\":[\"x\"]}"), "{body}");
    assert!(body.contains("{\"type\":\"uri\",\"value\":\"http://ex/alice\"}"), "{body}");
    assert!(body.contains("http://ex/bob"), "{body}");
    server.shutdown();
}

#[test]
fn accept_header_switches_to_tsv() {
    let server = boot(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let r = c.sparql_get(Q_KNOWS, Some("text/tab-separated-values")).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("content-type"), Some("text/tab-separated-values; charset=utf-8"));
    let body = r.text();
    assert!(body.starts_with("?x\n"), "{body}");
    assert!(body.contains("<http://ex/alice>\n"), "{body}");
    server.shutdown();
}

#[test]
fn post_form_and_raw_query_bodies() {
    let server = boot(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let form = format!("query={}", percent_encode(Q_KNOWS));
    let r = c
        .request(
            "POST",
            "/sparql",
            &[("Content-Type", "application/x-www-form-urlencoded")],
            form.as_bytes(),
        )
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("http://ex/alice"));

    let r = c
        .request(
            "POST",
            "/sparql",
            &[("Content-Type", "application/sparql-query; charset=utf-8")],
            Q_KNOWS.as_bytes(),
        )
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("http://ex/alice"));
    server.shutdown();
}

#[test]
fn ask_queries_serialize_boolean() {
    let server = boot(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let r = c
        .sparql_get("ASK { <http://ex/alice> <http://ex/knows> <http://ex/bob> }", None)
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.text(), "{\"head\":{},\"boolean\":true}");
    server.shutdown();
}

#[test]
fn malformed_sparql_is_400_with_parser_message() {
    let server = boot(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let r = c.sparql_get("SELECT ?x WHERE { broken", None).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("SPARQL parse error"), "{}", r.text());

    // Missing query parameter
    let r = c.request("GET", "/sparql", &[], b"").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("missing required parameter"), "{}", r.text());

    server.shutdown();
}

#[test]
fn empty_group_patterns_are_valid_queries() {
    // Zero-triple-pattern queries have fixed answers under SPARQL
    // semantics (μ0); they must not surface as 400s.
    let server = boot(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();

    let r = c.sparql_get("ASK {}", None).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.text(), "{\"head\":{},\"boolean\":true}");

    let r = c.sparql_get("SELECT ?x WHERE { }", None).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(
        r.text(),
        "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[{}]}}",
        "one unit solution with ?x unbound"
    );

    let r = c.sparql_get("SELECT * WHERE {} LIMIT 0", None).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.text(), "{\"head\":{\"vars\":[]},\"results\":{\"bindings\":[]}}");
    server.shutdown();
}

#[test]
fn unknown_media_types_are_406() {
    let server = boot(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    // Unacceptable Accept header
    let r = c.sparql_get(Q_KNOWS, Some("application/xml")).unwrap();
    assert_eq!(r.status, 406);
    assert!(r.text().contains("sparql-results+json"), "{}", r.text());
    // Unknown POST body media type
    let r = c
        .request("POST", "/sparql", &[("Content-Type", "text/turtle")], Q_KNOWS.as_bytes())
        .unwrap();
    assert_eq!(r.status, 406);
    // Unknown explicit format parameter
    let r = c.request("GET", "/sparql?query=x&format=xml", &[], b"").unwrap();
    assert_eq!(r.status, 406);
    // Wildcard Accept falls back to JSON
    let r = c.sparql_get(Q_KNOWS, Some("text/html, */*;q=0.1")).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("content-type"), Some("application/sparql-results+json"));
    server.shutdown();
}

/// Write raw request bytes and read the whole response (the server closes
/// the connection on framing errors, so EOF delimits it). The test client
/// always adds Content-Length, which is exactly what these requests must
/// not have — hence the raw socket.
fn raw_roundtrip(addr: std::net::SocketAddr, request: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn chunked_transfer_encoding_is_501_and_closes() {
    // RFC 7230 §3.3.1: a transfer coding the server does not implement
    // must be answered with 501, not a generic 400 — and the connection
    // must close, since the unread body cannot be re-framed.
    let server = boot(ServerConfig::default());
    let response = raw_roundtrip(
        server.local_addr(),
        "POST /sparql HTTP/1.1\r\nHost: t\r\n\
         Content-Type: application/sparql-query\r\n\
         Transfer-Encoding: chunked\r\n\r\n\
         7\r\nASK { }\r\n0\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 501 Not Implemented"), "{response}");
    assert!(response.contains("Connection: close"), "{response}");
    assert!(response.contains("Transfer-Encoding is not implemented"), "{response}");
    server.shutdown();
}

#[test]
fn transfer_encoding_with_content_length_is_400() {
    // RFC 7230 §3.3.3: a message carrying both Transfer-Encoding and
    // Content-Length is a request-smuggling vector; reject it outright
    // rather than honoring either framing.
    let server = boot(ServerConfig::default());
    let response = raw_roundtrip(
        server.local_addr(),
        "POST /sparql HTTP/1.1\r\nHost: t\r\n\
         Content-Type: application/sparql-query\r\n\
         Transfer-Encoding: chunked\r\nContent-Length: 7\r\n\r\n\
         ASK { }",
    );
    assert!(response.starts_with("HTTP/1.1 400 Bad Request"), "{response}");
    assert!(
        response.contains("both Transfer-Encoding and Content-Length"),
        "{response}"
    );
    server.shutdown();
}

#[test]
fn ask_with_tsv_negotiates_or_refuses() {
    let server = boot(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    let ask = "ASK { <http://ex/alice> <http://ex/knows> <http://ex/bob> }";

    // An exclusive TSV demand cannot carry a boolean: 406 with steering.
    let r = c.sparql_get(ask, Some("text/tab-separated-values")).unwrap();
    assert_eq!(r.status, 406, "{}", r.text());
    assert!(r.text().contains("sparql-results+json"), "{}", r.text());

    // Same demand via the format override parameter.
    let url = format!("/sparql?query={}&format=tsv", percent_encode(ask));
    let r = c.request("GET", &url, &[], b"").unwrap();
    assert_eq!(r.status, 406, "{}", r.text());

    // TSV preferred but JSON acceptable: the ASK is steered to JSON.
    let r = c
        .sparql_get(ask, Some("text/tab-separated-values, application/sparql-results+json;q=0.5"))
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.header("content-type"), Some("application/sparql-results+json"));
    assert_eq!(r.text(), "{\"head\":{},\"boolean\":true}");

    // TSV with a wildcard fallback steers too.
    let r = c.sparql_get(ask, Some("text/tab-separated-values, */*;q=0.1")).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.header("content-type"), Some("application/sparql-results+json"));

    // SELECT under the same exclusive-TSV demand still gets TSV.
    let r = c.sparql_get(Q_KNOWS, Some("text/tab-separated-values")).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.header("content-type"), Some("text/tab-separated-values; charset=utf-8"));
    server.shutdown();
}

#[test]
fn oversized_body_is_413() {
    let cfg = ServerConfig { max_body_bytes: 256, ..ServerConfig::default() };
    let server = boot(cfg);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let big = "x".repeat(1024);
    let r = c
        .request(
            "POST",
            "/sparql",
            &[("Content-Type", "application/sparql-query")],
            big.as_bytes(),
        )
        .unwrap();
    assert_eq!(r.status, 413);
    assert!(r.text().contains("256-byte limit"), "{}", r.text());
    server.shutdown();
}

#[test]
fn unknown_paths_and_methods() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    let r = client::request(addr, "GET", "/nope", &[], b"").unwrap();
    assert_eq!(r.status, 404);
    let r = client::request(addr, "DELETE", "/sparql", &[], b"").unwrap();
    assert_eq!(r.status, 405);
    assert!(r.header("allow").is_some());
    server.shutdown();
}

#[test]
fn healthz_and_stats_reflect_traffic() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    let r = client::request(addr, "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.text().trim(), "ok");

    let mut c = Client::connect(addr).unwrap();
    for _ in 0..3 {
        assert_eq!(c.sparql_get(Q_KNOWS, None).unwrap().status, 200);
    }
    assert_eq!(c.sparql_get("SELECT nope", None).unwrap().status, 400);

    let r = client::request(addr, "GET", "/stats", &[], b"").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("content-type"), Some("application/json"));
    let body = r.text();
    assert!(body.contains("\"triples\":5"), "{body}");
    assert!(body.contains("\"sparql\":{\"requests\":4,\"errors\":1"), "{body}");
    assert!(body.contains("\"p99_us\":"), "{body}");
    // The effective executor pool width is visible (and never the silent
    // fallback value 0 — an invalid RELSTORE_THREADS clamps with a warning).
    assert!(body.contains("\"exec_threads\":"), "{body}");
    assert!(!body.contains("\"exec_threads\":0"), "{body}");
    server.shutdown();
}

#[test]
fn stats_expose_plan_cache_counters() {
    let cfg = ServerConfig { plan_cache: Some(8), ..ServerConfig::default() };
    let server = boot(cfg);
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    for _ in 0..3 {
        assert_eq!(c.sparql_get(Q_KNOWS, None).unwrap().status, 200);
    }
    let r = client::request(addr, "GET", "/stats", &[], b"").unwrap();
    let body = r.text();
    assert!(body.contains("\"epoch\":"), "{body}");
    assert!(
        body.contains("\"plan_cache\":{\"entries\":1,\"capacity\":8,\"hits\":2,\"misses\":1"),
        "{body}"
    );
    server.shutdown();

    // A zero-entry cache reads as disabled.
    let server = boot(ServerConfig { plan_cache: Some(0), ..ServerConfig::default() });
    let r = client::request(server.local_addr(), "GET", "/stats", &[], b"").unwrap();
    assert!(r.text().contains("\"plan_cache\":null"), "{}", r.text());
    server.shutdown();
}

#[test]
fn zero_capacity_sheds_everything_with_503() {
    let cfg = ServerConfig { max_in_flight: 0, ..ServerConfig::default() };
    let server = boot(cfg);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let r = c.sparql_get(Q_KNOWS, None).unwrap();
    assert_eq!(r.status, 503);
    assert_eq!(r.header("retry-after"), Some("1"));
    assert!(r.text().contains("overloaded"), "{}", r.text());
    // Health stays green while queries shed: the probe is not admission-
    // controlled.
    let r = client::request(server.local_addr(), "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(r.status, 200);
    let r = client::request(server.local_addr(), "GET", "/stats", &[], b"").unwrap();
    assert!(r.text().contains("\"shed\":1"), "{}", r.text());
    server.shutdown();
}

#[test]
fn row_budget_trips_surface_as_503() {
    // A budget of 1 row cannot evaluate anything: the admitted query is
    // shed by the budget layer rather than running away.
    let cfg = ServerConfig { row_budget: Some(1), ..ServerConfig::default() };
    let server = boot(cfg);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let r = c
        .sparql_get("SELECT ?a ?b WHERE { ?a <http://ex/knows> ?x . ?y <http://ex/knows> ?b }", None)
        .unwrap();
    assert_eq!(r.status, 503, "{}", r.text());
    assert!(r.text().contains("evaluation limits"), "{}", r.text());
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let server = boot(ServerConfig::default());
    let mut c = Client::connect(server.local_addr()).unwrap();
    for i in 0..20 {
        let r = c.sparql_get(Q_KNOWS, None).unwrap();
        assert_eq!(r.status, 200, "request {i}");
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let cfg = ServerConfig { workers: 2, deadline: Some(Duration::from_secs(10)), ..Default::default() };
    let server = boot(cfg);
    let addr = server.local_addr();
    // A slow-ish query (cross join) racing shutdown: it must complete with
    // a well-formed response, not a torn or reset connection.
    let handle = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.sparql_get(
            "SELECT ?a ?b WHERE { ?a <http://ex/knows> ?x . ?y <http://ex/knows> ?b }",
            None,
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    let r = handle.join().expect("client thread");
    assert!(r.status == 200 || r.status == 503, "status {}", r.status);
    if r.status == 200 {
        assert!(r.text().contains("bindings"), "{}", r.text());
    }
}

#[test]
fn requests_after_shutdown_are_refused() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    server.shutdown();
    assert!(client::request(addr, "GET", "/healthz", &[], b"").is_err());
}

// -- POST /update ----------------------------------------------------------

#[test]
fn post_update_with_sparql_update_body() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    let r = client::request(
        addr,
        "POST",
        "/update",
        &[("Content-Type", "application/sparql-update")],
        b"INSERT DATA { <http://ex/dave> <http://ex/knows> <http://ex/carol> }",
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.header("content-type"), Some("application/json"));
    assert_eq!(r.text().trim(), r#"{"inserted":1,"deleted":0}"#);

    // The mutation is immediately visible to queries.
    let mut c = Client::connect(addr).unwrap();
    let q = c.sparql_get(Q_KNOWS, None).unwrap();
    assert!(q.text().contains("http://ex/dave"), "{}", q.text());
    server.shutdown();
}

#[test]
fn post_update_form_encoded_delete_insert() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    // Rename the predicate of every knows-triple; counts are effect-based.
    let update = "DELETE { ?s <http://ex/knows> ?o } \
                  INSERT { ?s <http://ex/met> ?o } \
                  WHERE { ?s <http://ex/knows> ?o }";
    let body = format!("update={}", percent_encode(update));
    let r = client::request(
        addr,
        "POST",
        "/update",
        &[("Content-Type", "application/x-www-form-urlencoded")],
        body.as_bytes(),
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.text().trim(), r#"{"inserted":3,"deleted":3}"#);

    let mut c = Client::connect(addr).unwrap();
    let gone = c.sparql_get(Q_KNOWS, None).unwrap();
    assert!(!gone.text().contains("alice"), "{}", gone.text());
    let moved = c
        .sparql_get("SELECT ?x WHERE { ?x <http://ex/met> <http://ex/carol> }", None)
        .unwrap();
    assert!(moved.text().contains("alice"), "{}", moved.text());
    server.shutdown();
}

#[test]
fn update_protocol_errors() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();

    // Parse errors are the client's fault: 400 with the parser message.
    let r = client::request(
        addr,
        "POST",
        "/update",
        &[("Content-Type", "application/sparql-update")],
        b"INSERT DATA { ?v <http://ex/p> 1 }",
    )
    .unwrap();
    assert_eq!(r.status, 400, "{}", r.text());
    assert!(r.text().contains("DATA"), "{}", r.text());

    // Missing parameter on a form body.
    let r = client::request(addr, "POST", "/update", &[], b"query=ASK%20%7B%7D").unwrap();
    assert_eq!(r.status, 400, "{}", r.text());
    assert!(r.text().contains("update"), "{}", r.text());

    // Wrong media type.
    let r = client::request(
        addr,
        "POST",
        "/update",
        &[("Content-Type", "text/turtle")],
        b"INSERT DATA { <http://a> <http://b> <http://c> }",
    )
    .unwrap();
    assert_eq!(r.status, 406, "{}", r.text());

    // Non-POST methods.
    let r = client::request(addr, "GET", "/update", &[], b"").unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("POST"));
    server.shutdown();
}

#[test]
fn stats_expose_update_and_group_commit_counters() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    for i in 0..3 {
        let body = format!(
            "INSERT DATA {{ <http://ex/u{i}> <http://ex/knows> <http://ex/carol> }}"
        );
        let r = client::request(
            addr,
            "POST",
            "/update",
            &[("Content-Type", "application/sparql-update")],
            body.as_bytes(),
        )
        .unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
    }
    let r = client::request(addr, "GET", "/stats", &[], b"").unwrap();
    assert_eq!(r.status, 200);
    let body = r.text();
    assert!(body.contains("\"updates\":{\"groups\":"), "{body}");
    assert!(body.contains("\"applied\":3"), "{body}");
    assert!(body.contains("\"batch_sizes\":{\"1\":"), "{body}");
    assert!(body.contains("\"invalidations_avoided\":"), "{body}");
    assert!(body.contains("\"update\":{"), "{body}");
    server.shutdown();
}
