//! Server resilience surfaces: the slowloris receive deadline (408), the
//! read-only degrade path end-to-end (healthz/stats/insert over real
//! loopback HTTP against a store degraded by an injected sync failure),
//! and the client's capped-backoff retry loop honoring `Retry-After`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use db2rdf::{RdfStore, SharedStore, StoreConfig};
use rdf::{Term, Triple};
use relstore::ScriptedFaults;
use server::client::{self, Client, RetryPolicy};
use server::{Server, ServerConfig};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "db2rdf-server-{}-{}-{name}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn demo_triples() -> Vec<Triple> {
    let person = |n: &str| Term::iri(format!("http://ex/{n}"));
    let knows = Term::iri("http://ex/knows");
    vec![
        Triple::new(person("alice"), knows.clone(), person("bob")),
        Triple::new(person("bob"), knows, person("carol")),
    ]
}

fn demo_store() -> SharedStore {
    let mut store = RdfStore::entity();
    store.load(&demo_triples()).unwrap();
    SharedStore::new(store)
}

const Q_KNOWS: &str = "SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y }";

// ---------------------------------------------------------------------------
// Slowloris guard
// ---------------------------------------------------------------------------

#[test]
fn slowloris_trickle_gets_408_and_disconnect() {
    let cfg =
        ServerConfig { recv_deadline: Duration::from_millis(300), ..ServerConfig::default() };
    let server = Server::start(demo_store(), "127.0.0.1:0", cfg).unwrap();

    let sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let writer = {
        // Trickle a valid request one byte at a time: steady progress, so
        // only a wall-clock deadline (not a stall counter) can catch it.
        let mut w = sock.try_clone().unwrap();
        std::thread::spawn(move || {
            for b in b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n" {
                if w.write_all(std::slice::from_ref(b)).is_err() {
                    break; // server already hung up on us — expected
                }
                let _ = w.flush();
                std::thread::sleep(Duration::from_millis(40));
            }
        })
    };

    let mut sock = sock;
    let mut buf = Vec::new();
    let _ = sock.read_to_end(&mut buf); // server closes after the 408
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 408 "), "expected 408, got: {text:?}");
    assert!(text.contains("Connection: close"), "{text:?}");
    writer.join().unwrap();
    server.shutdown();
}

#[test]
fn prompt_requests_unaffected_by_tight_deadline() {
    let cfg =
        ServerConfig { recv_deadline: Duration::from_millis(300), ..ServerConfig::default() };
    let server = Server::start(demo_store(), "127.0.0.1:0", cfg).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    // The deadline bounds receive time, not service time: requests that
    // arrive in one piece sail through, repeatedly, on one connection.
    for _ in 0..3 {
        let r = c.sparql_get(Q_KNOWS, None).unwrap();
        assert_eq!(r.status, 200);
    }
    server.shutdown();
}

// ---------------------------------------------------------------------------
// POST /insert + read-only degrade surfaced end-to-end
// ---------------------------------------------------------------------------

#[test]
fn insert_endpoint_adds_triples_and_rejects_garbage() {
    let server = Server::start(demo_store(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Two triples, one of which is already stored: received 2, inserted 1.
    let body = b"<http://ex/dave> <http://ex/knows> <http://ex/carol> .\n\
                 <http://ex/alice> <http://ex/knows> <http://ex/bob> .\n";
    let r = client::request(
        addr,
        "POST",
        "/insert",
        &[("Content-Type", "application/n-triples")],
        body,
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.text().trim(), r#"{"received":2,"inserted":1}"#);

    let mut c = Client::connect(addr).unwrap();
    let r = c.sparql_get(Q_KNOWS, None).unwrap();
    assert!(r.text().contains("http://ex/dave"), "{}", r.text());

    let r = client::request(addr, "POST", "/insert", &[], b"this is not n-triples").unwrap();
    assert_eq!(r.status, 400, "{}", r.text());

    let r = client::request(addr, "GET", "/insert", &[], b"").unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("POST"));

    let r = client::request(addr, "GET", "/stats", &[], b"").unwrap();
    assert!(r.text().contains("\"insert\":"), "{}", r.text());
    assert!(r.text().contains("\"degraded\":false"), "{}", r.text());
    server.shutdown();
}

#[test]
fn degraded_store_surfaces_in_healthz_stats_and_insert() {
    let dir = fresh_dir("degrade");
    // Seed a healthy durable store, then reopen it with the first fsync
    // scripted to fail: recovery is read-only so the reopen succeeds, and
    // the first mutation's commit fails, flipping the store read-only.
    {
        let mut store = RdfStore::open(&dir, StoreConfig::default()).unwrap();
        store.load(&demo_triples()).unwrap();
        store.close().unwrap();
    }
    let faults = ScriptedFaults::new().fail_sync(0).into_handle();
    let mut store = RdfStore::open_with_faults(&dir, StoreConfig::default(), faults).unwrap();
    let poison = Triple::new(
        Term::iri("http://ex/eve"),
        Term::iri("http://ex/knows"),
        Term::iri("http://ex/alice"),
    );
    assert!(store.insert(&poison).is_err(), "sync failure must surface");
    assert!(store.is_read_only(), "failed commit must degrade the store");

    let shared = SharedStore::new(store);
    let server = Server::start(shared, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Liveness: still alive (200), but the body says which kind of alive.
    let r = client::request(addr, "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.text().trim(), "degraded");

    let r = client::request(addr, "GET", "/stats", &[], b"").unwrap();
    assert!(r.text().contains("\"degraded\":true"), "{}", r.text());

    // Mutations are refused loudly — 503 with a retry hint, not a silent
    // drop and not a 200.
    let body = b"<http://ex/eve> <http://ex/knows> <http://ex/alice> .\n";
    let r = client::request(addr, "POST", "/insert", &[], body).unwrap();
    assert_eq!(r.status, 503, "{}", r.text());
    assert!(r.header("retry-after").is_some());
    assert!(r.text().contains("read-only"), "{}", r.text());

    // Reads keep serving the recovered data.
    let mut c = Client::connect(addr).unwrap();
    let r = c.sparql_get(Q_KNOWS, None).unwrap();
    assert_eq!(r.status, 200);
    assert!(r.text().contains("http://ex/alice"), "{}", r.text());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Client retry
// ---------------------------------------------------------------------------

/// A stub server answering each connection with the next scripted
/// response, for driving the retry loop without a real store.
fn stub_server(responses: Vec<&'static str>) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        for resp in responses {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf); // drain what arrived of the request
            s.write_all(resp.as_bytes()).unwrap();
        }
    });
    (addr, handle)
}

const BUSY_503: &str = "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 5\r\n\
                        Retry-After: 0\r\nConnection: close\r\n\r\nbusy\n";
const OK_200: &str = "HTTP/1.1 200 OK\r\nContent-Length: 3\r\nConnection: close\r\n\r\nok\n";

#[test]
fn retry_recovers_after_503_with_retry_after() {
    let (addr, handle) = stub_server(vec![BUSY_503, BUSY_503, OK_200]);
    let policy = RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(1),
        ..RetryPolicy::default()
    };
    let r = client::request_with_retry(addr, "GET", "/x", &[], b"", &policy).unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.text().trim(), "ok");
    handle.join().unwrap();
}

#[test]
fn retry_gives_up_after_max_attempts() {
    let (addr, handle) = stub_server(vec![BUSY_503, BUSY_503]);
    let policy = RetryPolicy {
        max_attempts: 2,
        base: Duration::from_millis(1),
        ..RetryPolicy::default()
    };
    let r = client::request_with_retry(addr, "GET", "/x", &[], b"", &policy).unwrap();
    assert_eq!(r.status, 503, "the final 503 is returned, not swallowed");
    handle.join().unwrap();
}
