//! SPARQL 1.0 abstract syntax: queries, the pattern tree of §3.1 of the
//! paper (AND / OR / OPTIONAL nodes with triple-pattern leaves), and FILTER
//! expressions.

use rdf::Term;

/// A subject/predicate/object position: variable or constant term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermPattern {
    /// Variable name without the `?`/`$` sigil.
    Var(String),
    Term(Term),
}

impl TermPattern {
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }

    pub fn as_term(&self) -> Option<&Term> {
        match self {
            TermPattern::Var(_) => None,
            TermPattern::Term(t) => Some(t),
        }
    }

    pub fn is_var(&self) -> bool {
        matches!(self, TermPattern::Var(_))
    }
}

/// A triple pattern, tagged with a query-unique id (`t1`, `t2`, ... in the
/// paper's notation) assigned in parse order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    pub id: usize,
    pub subject: TermPattern,
    pub predicate: TermPattern,
    pub object: TermPattern,
}

impl TriplePattern {
    /// All variables mentioned by this pattern.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(TermPattern::as_var)
            .collect()
    }
}

/// A node of the pattern tree (paper Fig. 7). A `Group` is an AND node whose
/// children are evaluated conjunctively, with group-scoped FILTERs.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    Triple(TriplePattern),
    Group(GroupPattern),
    /// OR node: SPARQL `UNION`.
    Union(Vec<Pattern>),
    /// OPTIONAL node guarding its child pattern.
    Optional(Box<Pattern>),
    /// `BIND(expr AS ?var)` — extends each solution with a computed value.
    Bind { expr: Expression, var: String },
    /// Inline `VALUES` data block.
    Values(ValuesBlock),
    /// Nested `{ SELECT ... }` subquery.
    SubSelect(Box<Query>),
}

/// `VALUES (?a ?b) { (1 UNDEF) ... }` — `None` cells are `UNDEF`.
#[derive(Debug, Clone, PartialEq)]
pub struct ValuesBlock {
    pub vars: Vec<String>,
    pub rows: Vec<Vec<Option<Term>>>,
}

#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    pub children: Vec<Pattern>,
    pub filters: Vec<Expression>,
}

impl Pattern {
    /// All triple patterns in this subtree, in parse order. Subquery
    /// patterns are opaque: their triples belong to the inner query's own
    /// plan, not the enclosing one.
    pub fn triples(&self) -> Vec<&TriplePattern> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a Pattern, out: &mut Vec<&'a TriplePattern>) {
            match p {
                Pattern::Triple(t) => out.push(t),
                Pattern::Group(g) => g.children.iter().for_each(|c| walk(c, out)),
                Pattern::Union(cs) => cs.iter().for_each(|c| walk(c, out)),
                Pattern::Optional(c) => walk(c, out),
                Pattern::Bind { .. } | Pattern::Values(_) | Pattern::SubSelect(_) => {}
            }
        }
        walk(self, &mut out);
        out.sort_by_key(|t| t.id);
        out
    }

    /// All variables visible from this subtree: bound by triples, BIND,
    /// VALUES, or projected out of a subquery.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        fn walk(p: &Pattern, seen: &mut std::collections::BTreeSet<String>) {
            match p {
                Pattern::Triple(t) => {
                    for v in t.variables() {
                        seen.insert(v.to_string());
                    }
                }
                Pattern::Group(g) => g.children.iter().for_each(|c| walk(c, seen)),
                Pattern::Union(cs) => cs.iter().for_each(|c| walk(c, seen)),
                Pattern::Optional(c) => walk(c, seen),
                Pattern::Bind { var, .. } => {
                    seen.insert(var.clone());
                }
                Pattern::Values(v) => {
                    for var in &v.vars {
                        seen.insert(var.clone());
                    }
                }
                Pattern::SubSelect(q) => {
                    for var in q.projected_variables() {
                        seen.insert(var);
                    }
                }
            }
        }
        walk(self, &mut seen);
        seen.into_iter().collect()
    }
}

/// FILTER expressions (SPARQL 1.0 operator subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    Var(String),
    Term(Term),
    Or(Box<Expression>, Box<Expression>),
    And(Box<Expression>, Box<Expression>),
    Not(Box<Expression>),
    Compare { op: CompareOp, left: Box<Expression>, right: Box<Expression> },
    Arith { op: ArithOp, left: Box<Expression>, right: Box<Expression> },
    Neg(Box<Expression>),
    /// `BOUND(?x)`
    Bound(String),
    /// `REGEX(expr, pattern [, flags])`
    Regex { expr: Box<Expression>, pattern: String, case_insensitive: bool },
    /// `STR(expr)` — lexical form.
    Str(Box<Expression>),
    /// `LANG(expr)`
    Lang(Box<Expression>),
    /// `DATATYPE(expr)`
    Datatype(Box<Expression>),
    IsIri(Box<Expression>),
    IsLiteral(Box<Expression>),
    IsBlank(Box<Expression>),
    /// Aggregate call: `COUNT/SUM/AVG/MIN/MAX([DISTINCT] expr)`; `arg` is
    /// `None` for `COUNT(*)`.
    Aggregate { func: AggFunc, distinct: bool, arg: Option<Box<Expression>> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl Expression {
    /// Variables referenced by the expression.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expression, out: &mut Vec<&'a str>) {
            match e {
                Expression::Var(v) => out.push(v),
                Expression::Bound(v) => out.push(v),
                Expression::Term(_) => {}
                Expression::Or(a, b) | Expression::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expression::Not(a) | Expression::Neg(a) => walk(a, out),
                Expression::Compare { left, right, .. }
                | Expression::Arith { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                Expression::Regex { expr, .. }
                | Expression::Str(expr)
                | Expression::Lang(expr)
                | Expression::Datatype(expr)
                | Expression::IsIri(expr)
                | Expression::IsLiteral(expr)
                | Expression::IsBlank(expr) => walk(expr, out),
                Expression::Aggregate { arg, .. } => {
                    if let Some(a) = arg {
                        walk(a, out);
                    }
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Variables referenced *outside* any aggregate call — in an
    /// aggregating query these must all be grouping keys.
    pub fn non_aggregated_variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expression, out: &mut Vec<&'a str>) {
            match e {
                Expression::Var(v) => out.push(v),
                Expression::Bound(v) => out.push(v),
                Expression::Term(_) | Expression::Aggregate { .. } => {}
                Expression::Or(a, b) | Expression::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expression::Not(a) | Expression::Neg(a) => walk(a, out),
                Expression::Compare { left, right, .. }
                | Expression::Arith { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                Expression::Regex { expr, .. }
                | Expression::Str(expr)
                | Expression::Lang(expr)
                | Expression::Datatype(expr)
                | Expression::IsIri(expr)
                | Expression::IsLiteral(expr)
                | Expression::IsBlank(expr) => walk(expr, out),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Whether any aggregate call appears in the expression.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expression::Aggregate { .. } => true,
            Expression::Var(_) | Expression::Term(_) | Expression::Bound(_) => false,
            Expression::Or(a, b) | Expression::And(a, b) => {
                a.has_aggregate() || b.has_aggregate()
            }
            Expression::Compare { left, right, .. } | Expression::Arith { left, right, .. } => {
                left.has_aggregate() || right.has_aggregate()
            }
            Expression::Not(e)
            | Expression::Neg(e)
            | Expression::Regex { expr: e, .. }
            | Expression::Str(e)
            | Expression::Lang(e)
            | Expression::Datatype(e)
            | Expression::IsIri(e)
            | Expression::IsLiteral(e)
            | Expression::IsBlank(e) => e.has_aggregate(),
        }
    }
}

/// Query form.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    Select { vars: SelectVars, distinct: bool },
    Ask,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectVars {
    /// `SELECT *`
    All,
    /// Explicit projection list (names without sigils).
    Vars(Vec<String>),
    /// General projection mixing plain variables and `(expr AS ?v)` items.
    Items(Vec<SelectItem>),
}

/// One projection item: a plain variable (`expr` is `None`) or a computed
/// `(expr AS ?var)` binding. `var` is always the output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Option<Expression>,
    pub var: String,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderCondition {
    pub expr: Expression,
    pub ascending: bool,
}

/// A parsed SPARQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub form: QueryForm,
    /// The root pattern (the WHERE group).
    pub pattern: GroupPattern,
    /// `GROUP BY ?v ...` grouping variables (variables only; grouping by
    /// arbitrary expressions is out of scope).
    pub group_by: Vec<String>,
    /// `HAVING(cond) ...` conditions, evaluated over the grouped solution.
    pub having: Vec<Expression>,
    pub order_by: Vec<OrderCondition>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// A SPARQL 1.1 Update request: a `;`-separated sequence of operations,
/// applied in order as one atomic request (all-or-nothing at the WAL).
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub ops: Vec<UpdateOp>,
}

/// One update operation. The supported subset — `INSERT DATA`,
/// `DELETE DATA`, and `DELETE/INSERT ... WHERE` (including the
/// `DELETE WHERE` shorthand) — covers every graph-store mutation that does
/// not involve named graphs or blank-node minting.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `INSERT DATA { ... }`: ground triples, no variables.
    InsertData(Vec<rdf::Triple>),
    /// `DELETE DATA { ... }`: ground triples, no variables.
    DeleteData(Vec<rdf::Triple>),
    /// `DELETE { tmpl } INSERT { tmpl } WHERE { pattern }`. Either template
    /// may be empty (plain `DELETE ... WHERE` / `INSERT ... WHERE`); the
    /// `DELETE WHERE { p }` shorthand reuses the pattern's triples as the
    /// delete template. The WHERE clause is evaluated once against the
    /// pre-update state; templates are instantiated per solution, deletes
    /// applied before inserts.
    DeleteInsert {
        delete: Vec<TriplePattern>,
        insert: Vec<TriplePattern>,
        pattern: GroupPattern,
    },
}

impl Update {
    /// Ground triples mentioned anywhere in the request (DATA payloads).
    pub fn data_triple_count(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                UpdateOp::InsertData(ts) | UpdateOp::DeleteData(ts) => ts.len(),
                UpdateOp::DeleteInsert { .. } => 0,
            })
            .sum()
    }
}

impl Query {
    /// The variables this query projects, in order.
    pub fn projected_variables(&self) -> Vec<String> {
        match &self.form {
            QueryForm::Ask => Vec::new(),
            QueryForm::Select { vars: SelectVars::Vars(v), .. } => v.clone(),
            QueryForm::Select { vars: SelectVars::Items(items), .. } => {
                items.iter().map(|i| i.var.clone()).collect()
            }
            QueryForm::Select { vars: SelectVars::All, .. } => {
                Pattern::Group(self.pattern.clone()).variables()
            }
        }
    }

    pub fn is_distinct(&self) -> bool {
        matches!(self.form, QueryForm::Select { distinct: true, .. })
    }

    /// Total number of triple patterns in the outer WHERE clause (subquery
    /// triples belong to the inner query's plan).
    pub fn triple_count(&self) -> usize {
        Pattern::Group(self.pattern.clone()).triples().len()
    }

    /// Projection items with any aggregate expression.
    pub fn select_items(&self) -> Option<&[SelectItem]> {
        match &self.form {
            QueryForm::Select { vars: SelectVars::Items(items), .. } => Some(items),
            _ => None,
        }
    }

    /// Whether the solution is grouped: an explicit GROUP BY, a HAVING
    /// clause, or an aggregate in the projection all trigger aggregation.
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || !self.having.is_empty()
            || self
                .select_items()
                .is_some_and(|items| {
                    items.iter().any(|i| i.expr.as_ref().is_some_and(|e| e.has_aggregate()))
                })
    }

    /// Whether the pattern contains any non-triple generator (BIND, VALUES,
    /// or a subquery) anywhere.
    pub fn has_pattern_extensions(&self) -> bool {
        fn walk(p: &Pattern) -> bool {
            match p {
                Pattern::Triple(_) => false,
                Pattern::Group(g) => g.children.iter().any(walk),
                Pattern::Union(cs) => cs.iter().any(walk),
                Pattern::Optional(c) => walk(c),
                Pattern::Bind { .. } | Pattern::Values(_) | Pattern::SubSelect(_) => true,
            }
        }
        self.pattern.children.iter().any(walk)
    }

    /// Whether the query's answer is fixed by the algebra alone (`ASK {}`,
    /// `SELECT * WHERE {}`): no triples, no generators, no aggregation, no
    /// computed projection.
    pub fn is_fixed_answer(&self) -> bool {
        self.triple_count() == 0
            && !self.has_pattern_extensions()
            && !self.is_aggregate()
            && self.select_items().is_none_or(|items| items.iter().all(|i| i.expr.is_none()))
    }
}
