//! SPARQL 1.0 abstract syntax: queries, the pattern tree of §3.1 of the
//! paper (AND / OR / OPTIONAL nodes with triple-pattern leaves), and FILTER
//! expressions.

use rdf::Term;

/// A subject/predicate/object position: variable or constant term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermPattern {
    /// Variable name without the `?`/`$` sigil.
    Var(String),
    Term(Term),
}

impl TermPattern {
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }

    pub fn as_term(&self) -> Option<&Term> {
        match self {
            TermPattern::Var(_) => None,
            TermPattern::Term(t) => Some(t),
        }
    }

    pub fn is_var(&self) -> bool {
        matches!(self, TermPattern::Var(_))
    }
}

/// A triple pattern, tagged with a query-unique id (`t1`, `t2`, ... in the
/// paper's notation) assigned in parse order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    pub id: usize,
    pub subject: TermPattern,
    pub predicate: TermPattern,
    pub object: TermPattern,
}

impl TriplePattern {
    /// All variables mentioned by this pattern.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(TermPattern::as_var)
            .collect()
    }
}

/// A node of the pattern tree (paper Fig. 7). A `Group` is an AND node whose
/// children are evaluated conjunctively, with group-scoped FILTERs.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    Triple(TriplePattern),
    Group(GroupPattern),
    /// OR node: SPARQL `UNION`.
    Union(Vec<Pattern>),
    /// OPTIONAL node guarding its child pattern.
    Optional(Box<Pattern>),
}

#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    pub children: Vec<Pattern>,
    pub filters: Vec<Expression>,
}

impl Pattern {
    /// All triple patterns in this subtree, in parse order.
    pub fn triples(&self) -> Vec<&TriplePattern> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a Pattern, out: &mut Vec<&'a TriplePattern>) {
            match p {
                Pattern::Triple(t) => out.push(t),
                Pattern::Group(g) => g.children.iter().for_each(|c| walk(c, out)),
                Pattern::Union(cs) => cs.iter().for_each(|c| walk(c, out)),
                Pattern::Optional(c) => walk(c, out),
            }
        }
        walk(self, &mut out);
        out.sort_by_key(|t| t.id);
        out
    }

    /// All variables bound by triples in this subtree.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        for t in self.triples() {
            for v in t.variables() {
                seen.insert(v.to_string());
            }
        }
        seen.into_iter().collect()
    }
}

/// FILTER expressions (SPARQL 1.0 operator subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    Var(String),
    Term(Term),
    Or(Box<Expression>, Box<Expression>),
    And(Box<Expression>, Box<Expression>),
    Not(Box<Expression>),
    Compare { op: CompareOp, left: Box<Expression>, right: Box<Expression> },
    Arith { op: ArithOp, left: Box<Expression>, right: Box<Expression> },
    Neg(Box<Expression>),
    /// `BOUND(?x)`
    Bound(String),
    /// `REGEX(expr, pattern [, flags])`
    Regex { expr: Box<Expression>, pattern: String, case_insensitive: bool },
    /// `STR(expr)` — lexical form.
    Str(Box<Expression>),
    /// `LANG(expr)`
    Lang(Box<Expression>),
    /// `DATATYPE(expr)`
    Datatype(Box<Expression>),
    IsIri(Box<Expression>),
    IsLiteral(Box<Expression>),
    IsBlank(Box<Expression>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl Expression {
    /// Variables referenced by the expression.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expression, out: &mut Vec<&'a str>) {
            match e {
                Expression::Var(v) => out.push(v),
                Expression::Bound(v) => out.push(v),
                Expression::Term(_) => {}
                Expression::Or(a, b) | Expression::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expression::Not(a) | Expression::Neg(a) => walk(a, out),
                Expression::Compare { left, right, .. }
                | Expression::Arith { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                Expression::Regex { expr, .. }
                | Expression::Str(expr)
                | Expression::Lang(expr)
                | Expression::Datatype(expr)
                | Expression::IsIri(expr)
                | Expression::IsLiteral(expr)
                | Expression::IsBlank(expr) => walk(expr, out),
            }
        }
        walk(self, &mut out);
        out
    }
}

/// Query form.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    Select { vars: SelectVars, distinct: bool },
    Ask,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectVars {
    /// `SELECT *`
    All,
    /// Explicit projection list (names without sigils).
    Vars(Vec<String>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderCondition {
    pub expr: Expression,
    pub ascending: bool,
}

/// A parsed SPARQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub form: QueryForm,
    /// The root pattern (the WHERE group).
    pub pattern: GroupPattern,
    pub order_by: Vec<OrderCondition>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

/// A SPARQL 1.1 Update request: a `;`-separated sequence of operations,
/// applied in order as one atomic request (all-or-nothing at the WAL).
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub ops: Vec<UpdateOp>,
}

/// One update operation. The supported subset — `INSERT DATA`,
/// `DELETE DATA`, and `DELETE/INSERT ... WHERE` (including the
/// `DELETE WHERE` shorthand) — covers every graph-store mutation that does
/// not involve named graphs or blank-node minting.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `INSERT DATA { ... }`: ground triples, no variables.
    InsertData(Vec<rdf::Triple>),
    /// `DELETE DATA { ... }`: ground triples, no variables.
    DeleteData(Vec<rdf::Triple>),
    /// `DELETE { tmpl } INSERT { tmpl } WHERE { pattern }`. Either template
    /// may be empty (plain `DELETE ... WHERE` / `INSERT ... WHERE`); the
    /// `DELETE WHERE { p }` shorthand reuses the pattern's triples as the
    /// delete template. The WHERE clause is evaluated once against the
    /// pre-update state; templates are instantiated per solution, deletes
    /// applied before inserts.
    DeleteInsert {
        delete: Vec<TriplePattern>,
        insert: Vec<TriplePattern>,
        pattern: GroupPattern,
    },
}

impl Update {
    /// Ground triples mentioned anywhere in the request (DATA payloads).
    pub fn data_triple_count(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                UpdateOp::InsertData(ts) | UpdateOp::DeleteData(ts) => ts.len(),
                UpdateOp::DeleteInsert { .. } => 0,
            })
            .sum()
    }
}

impl Query {
    /// The variables this query projects, in order.
    pub fn projected_variables(&self) -> Vec<String> {
        match &self.form {
            QueryForm::Ask => Vec::new(),
            QueryForm::Select { vars: SelectVars::Vars(v), .. } => v.clone(),
            QueryForm::Select { vars: SelectVars::All, .. } => {
                Pattern::Group(self.pattern.clone()).variables()
            }
        }
    }

    pub fn is_distinct(&self) -> bool {
        matches!(self.form, QueryForm::Select { distinct: true, .. })
    }

    /// Total number of triple patterns.
    pub fn triple_count(&self) -> usize {
        Pattern::Group(self.pattern.clone()).triples().len()
    }
}
