use std::fmt;

/// SPARQL lexing/parsing error with a byte offset into the query text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SPARQL parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SparqlError {}
