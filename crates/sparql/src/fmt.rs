//! Render a parsed [`Query`] back to SPARQL text that this crate's own
//! parser accepts.
//!
//! The harness's greedy shrinker works on the AST (dropping triple patterns,
//! filters, UNION branches, modifiers) and needs to re-serialize every
//! candidate so the minimized repro in `tests/corpus/` is a plain query
//! string anyone can paste into the server. Round-tripping is semantic, not
//! lexical: triple-pattern ids are reassigned by the parser and keywords are
//! normalized, but re-parsing the output yields a query with identical
//! solutions.
//!
//! Expressions are emitted fully parenthesized, so operator precedence never
//! has to be reconstructed. Term constants reuse [`rdf::Term::encode`] —
//! the canonical N-Triples form, which is valid SPARQL for IRIs and
//! literals. (Blank-node constants cannot appear in a parsed query: the
//! parser rewrites them to variables.)

use std::fmt::Write;

use crate::ast::{
    ArithOp, CompareOp, Expression, GroupPattern, Pattern, Query, QueryForm, SelectVars,
    TermPattern, Update, UpdateOp,
};

/// Serialize `query` to parseable SPARQL text.
pub fn to_sparql(query: &Query) -> String {
    let mut out = String::new();
    match &query.form {
        QueryForm::Ask => out.push_str("ASK "),
        QueryForm::Select { vars, distinct } => {
            out.push_str("SELECT ");
            if *distinct {
                out.push_str("DISTINCT ");
            }
            match vars {
                SelectVars::All => out.push_str("* "),
                SelectVars::Vars(vs) => {
                    for v in vs {
                        let _ = write!(out, "?{v} ");
                    }
                }
                SelectVars::Items(items) => {
                    for item in items {
                        match &item.expr {
                            None => {
                                let _ = write!(out, "?{} ", item.var);
                            }
                            Some(e) => {
                                out.push('(');
                                write_expr(&mut out, e);
                                let _ = write!(out, " AS ?{})", item.var);
                                out.push(' ');
                            }
                        }
                    }
                }
            }
            out.push_str("WHERE ");
        }
    }
    write_group_braced(&mut out, &query.pattern);
    if !query.group_by.is_empty() {
        out.push_str(" GROUP BY");
        for v in &query.group_by {
            let _ = write!(out, " ?{v}");
        }
    }
    for h in &query.having {
        out.push_str(" HAVING (");
        write_expr(&mut out, h);
        out.push(')');
    }
    if !query.order_by.is_empty() {
        out.push_str(" ORDER BY");
        for cond in &query.order_by {
            if cond.ascending {
                out.push_str(" ASC(");
            } else {
                out.push_str(" DESC(");
            }
            write_expr(&mut out, &cond.expr);
            out.push(')');
        }
    }
    if let Some(n) = query.limit {
        let _ = write!(out, " LIMIT {n}");
    }
    if let Some(n) = query.offset {
        let _ = write!(out, " OFFSET {n}");
    }
    out
}

/// Serialize an update request to parseable SPARQL Update text.
///
/// Like [`to_sparql`], round-tripping is semantic: re-parsing the output
/// yields an [`Update`] with the same effect on any store. The update-case
/// shrinker relies on this to re-serialize minimized repros.
pub fn to_sparql_update(update: &Update) -> String {
    let mut out = String::new();
    for (i, op) in update.ops.iter().enumerate() {
        if i > 0 {
            out.push_str(" ; ");
        }
        match op {
            UpdateOp::InsertData(triples) => {
                out.push_str("INSERT DATA ");
                write_ground_braced(&mut out, triples);
            }
            UpdateOp::DeleteData(triples) => {
                out.push_str("DELETE DATA ");
                write_ground_braced(&mut out, triples);
            }
            UpdateOp::DeleteInsert { delete, insert, pattern } => {
                if !delete.is_empty() {
                    out.push_str("DELETE ");
                    write_template_braced(&mut out, delete);
                    out.push(' ');
                }
                if !insert.is_empty() || delete.is_empty() {
                    out.push_str("INSERT ");
                    write_template_braced(&mut out, insert);
                    out.push(' ');
                }
                out.push_str("WHERE ");
                write_group_braced(&mut out, pattern);
            }
        }
    }
    out
}

fn write_ground_braced(out: &mut String, triples: &[rdf::Triple]) {
    out.push_str("{ ");
    for t in triples {
        t.subject.encode_into(out);
        out.push(' ');
        t.predicate.encode_into(out);
        out.push(' ');
        t.object.encode_into(out);
        out.push_str(" . ");
    }
    out.push('}');
}

fn write_template_braced(out: &mut String, triples: &[crate::ast::TriplePattern]) {
    out.push_str("{ ");
    for t in triples {
        write_term_pattern(out, &t.subject);
        out.push(' ');
        write_term_pattern(out, &t.predicate);
        out.push(' ');
        write_term_pattern(out, &t.object);
        out.push_str(" . ");
    }
    out.push('}');
}

fn write_term_pattern(out: &mut String, tp: &TermPattern) {
    match tp {
        TermPattern::Var(v) => {
            let _ = write!(out, "?{v}");
        }
        TermPattern::Term(t) => t.encode_into(out),
    }
}

fn write_group_braced(out: &mut String, group: &GroupPattern) {
    out.push_str("{ ");
    write_group_body(out, group);
    out.push('}');
}

fn write_group_body(out: &mut String, group: &GroupPattern) {
    for child in &group.children {
        write_pattern(out, child);
    }
    for filter in &group.filters {
        out.push_str("FILTER (");
        write_expr(out, filter);
        out.push_str(") ");
    }
}

fn write_pattern(out: &mut String, pattern: &Pattern) {
    match pattern {
        Pattern::Triple(t) => {
            write_term_pattern(out, &t.subject);
            out.push(' ');
            write_term_pattern(out, &t.predicate);
            out.push(' ');
            write_term_pattern(out, &t.object);
            out.push_str(" . ");
        }
        Pattern::Group(g) => {
            write_group_braced(out, g);
            out.push(' ');
        }
        Pattern::Union(alts) => {
            for (i, alt) in alts.iter().enumerate() {
                if i > 0 {
                    out.push_str("UNION ");
                }
                // Each alternative gets its own braces; a Group alternative
                // supplies them itself via write_pattern's Group arm, but a
                // bare triple (post-shrink) needs wrapping.
                match alt {
                    Pattern::Group(g) => {
                        write_group_braced(out, g);
                        out.push(' ');
                    }
                    other => {
                        out.push_str("{ ");
                        write_pattern(out, other);
                        out.push_str("} ");
                    }
                }
            }
        }
        Pattern::Optional(inner) => {
            out.push_str("OPTIONAL ");
            match inner.as_ref() {
                Pattern::Group(g) => write_group_braced(out, g),
                other => {
                    out.push_str("{ ");
                    write_pattern(out, other);
                    out.push('}');
                }
            }
            out.push(' ');
        }
        Pattern::Bind { expr, var } => {
            out.push_str("BIND(");
            write_expr(out, expr);
            let _ = write!(out, " AS ?{var}) ");
        }
        Pattern::Values(block) => {
            out.push_str("VALUES (");
            for (i, v) in block.vars.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "?{v}");
            }
            out.push_str(") { ");
            for row in &block.rows {
                out.push('(');
                for (i, cell) in row.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    match cell {
                        None => out.push_str("UNDEF"),
                        Some(t) => t.encode_into(out),
                    }
                }
                out.push_str(") ");
            }
            out.push_str("} ");
        }
        Pattern::SubSelect(q) => {
            out.push_str("{ ");
            out.push_str(&to_sparql(q));
            out.push_str(" } ");
        }
    }
}

fn write_expr(out: &mut String, expr: &Expression) {
    match expr {
        Expression::Var(v) => {
            let _ = write!(out, "?{v}");
        }
        Expression::Term(t) => t.encode_into(out),
        Expression::Or(l, r) => write_binary(out, l, "||", r),
        Expression::And(l, r) => write_binary(out, l, "&&", r),
        Expression::Not(e) => {
            out.push_str("(!");
            write_expr(out, e);
            out.push(')');
        }
        Expression::Compare { op, left, right } => {
            let op = match op {
                CompareOp::Eq => "=",
                CompareOp::NotEq => "!=",
                CompareOp::Lt => "<",
                CompareOp::LtEq => "<=",
                CompareOp::Gt => ">",
                CompareOp::GtEq => ">=",
            };
            write_binary(out, left, op, right);
        }
        Expression::Arith { op, left, right } => {
            let op = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
            };
            write_binary(out, left, op, right);
        }
        Expression::Neg(e) => {
            out.push_str("(-");
            write_expr(out, e);
            out.push(')');
        }
        Expression::Bound(v) => {
            let _ = write!(out, "BOUND(?{v})");
        }
        Expression::Regex { expr, pattern, case_insensitive } => {
            out.push_str("REGEX(");
            write_expr(out, expr);
            out.push_str(", \"");
            for c in pattern.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
            if *case_insensitive {
                out.push_str(", \"i\"");
            }
            out.push(')');
        }
        Expression::Aggregate { func, distinct, arg } => {
            out.push_str(func.name());
            out.push('(');
            if *distinct {
                out.push_str("DISTINCT ");
            }
            match arg {
                None => out.push('*'),
                Some(e) => write_expr(out, e),
            }
            out.push(')');
        }
        Expression::Str(e) => write_call(out, "STR", e),
        Expression::Lang(e) => write_call(out, "LANG", e),
        Expression::Datatype(e) => write_call(out, "DATATYPE", e),
        Expression::IsIri(e) => write_call(out, "isIRI", e),
        Expression::IsLiteral(e) => write_call(out, "isLITERAL", e),
        Expression::IsBlank(e) => write_call(out, "isBLANK", e),
    }
}

fn write_binary(out: &mut String, left: &Expression, op: &str, right: &Expression) {
    out.push('(');
    write_expr(out, left);
    let _ = write!(out, " {op} ");
    write_expr(out, right);
    out.push(')');
}

fn write_call(out: &mut String, name: &str, arg: &Expression) {
    out.push_str(name);
    out.push('(');
    write_expr(out, arg);
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_sparql, parse_update};

    /// Strip parser-assigned triple ids so round-tripped ASTs compare equal.
    fn normalized(mut q: Query) -> Query {
        fn fix_group(g: &mut GroupPattern) {
            for c in &mut g.children {
                fix(c);
            }
        }
        fn fix(p: &mut Pattern) {
            match p {
                Pattern::Triple(t) => t.id = 0,
                Pattern::Group(g) => fix_group(g),
                Pattern::Union(alts) => alts.iter_mut().for_each(fix),
                Pattern::Optional(inner) => fix(inner),
                Pattern::Bind { .. } | Pattern::Values(_) => {}
                Pattern::SubSelect(q) => fix_group(&mut q.pattern),
            }
        }
        fix_group(&mut q.pattern);
        q
    }

    #[test]
    fn round_trip_is_a_fixpoint() {
        let cases = [
            "SELECT * WHERE { ?s ?p ?o }",
            "SELECT DISTINCT ?s ?o WHERE { ?s <http://p/1> ?o . ?o <http://p/2> \"x\" }",
            "ASK { ?s <http://p/1> \"v\"@en }",
            "SELECT ?s WHERE { { ?s <http://p/1> ?a } UNION { ?s <http://p/2> ?b } }",
            "SELECT ?s ?n WHERE { ?s <http://p/1> ?x OPTIONAL { ?s <http://p/2> ?n } }",
            "SELECT ?s WHERE { ?s <http://p/1> ?x \
             FILTER ((?x > 3) && (!(?x = 7)) || BOUND(?x)) }",
            "SELECT ?s WHERE { ?s <http://p/1> ?x FILTER (REGEX(STR(?x), \"a.c\", \"i\")) }",
            "SELECT ?s WHERE { ?s <http://p/1> ?x \
             FILTER (isIRI(?x) || isLITERAL(?x) || isBLANK(?x)) }",
            "SELECT ?s WHERE { ?s <http://p/1> ?x FILTER ((?x + 1) * 2 <= (10 - ?x) / 3) }",
            "SELECT ?s WHERE { ?s <http://p/1> ?x FILTER (LANG(?x) = \"en\") }",
            "SELECT ?s WHERE { ?s <http://p/1> ?x FILTER (DATATYPE(?x) != <http://dt>) }",
            "SELECT ?s ?x WHERE { ?s <http://p/1> ?x } ORDER BY ASC(?x) DESC(?s) LIMIT 5 OFFSET 2",
            "SELECT ?s WHERE { ?s <http://p/1> \"quote \\\" and \\\\ slash\" }",
            "ASK {}",
            "SELECT ?s WHERE { ?s <http://p/1> 42 }",
            "SELECT ?s WHERE { ?s <http://p/1> 7 FILTER (?s != 3.25) }",
            "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://p/1> ?o }",
            "SELECT ?s (SUM(?x) AS ?t) (AVG(?x) AS ?a) WHERE { ?s <http://p/1> ?x } \
             GROUP BY ?s HAVING ((COUNT(?x) > 1)) ORDER BY DESC(?t) LIMIT 3",
            "SELECT ?s (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s",
            "SELECT ?s (MIN(?x) AS ?lo) (MAX(?x) AS ?hi) WHERE { ?s <http://p/1> ?x } \
             GROUP BY ?s",
            "SELECT ?s ?y WHERE { ?s <http://p/1> ?x BIND((?x + 1) AS ?y) }",
            "SELECT ?s WHERE { ?s <http://p/1> ?x VALUES (?x) { (1) (2) (UNDEF) } }",
            "SELECT ?s ?o WHERE { ?s <http://p/1> ?x VALUES (?s ?o) { \
             (<http://s/1> \"a\") (UNDEF 2) } }",
            "SELECT ?s ?n WHERE { ?s <http://p/2> ?z \
             { SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s <http://p/1> ?o } GROUP BY ?s } }",
        ];
        for case in cases {
            let parsed = parse_sparql(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            let text = to_sparql(&parsed);
            let reparsed =
                parse_sparql(&text).unwrap_or_else(|e| panic!("{case} -> {text}: {e}"));
            assert_eq!(
                normalized(parsed.clone()),
                normalized(reparsed.clone()),
                "{case} -> {text}: AST drifted"
            );
            // And the serializer itself is a fixpoint on its own output.
            assert_eq!(text, to_sparql(&reparsed), "{case}: serializer not idempotent");
        }
    }

    /// Strip parser-assigned triple ids from an update's templates/pattern.
    fn normalized_update(mut u: Update) -> Update {
        fn fix_group(g: &mut GroupPattern) {
            for c in &mut g.children {
                match c {
                    Pattern::Triple(t) => t.id = 0,
                    Pattern::Group(g) => fix_group(g),
                    Pattern::Union(alts) => {
                        for a in alts {
                            if let Pattern::Group(g) = a {
                                fix_group(g);
                            } else if let Pattern::Triple(t) = a {
                                t.id = 0;
                            }
                        }
                    }
                    Pattern::Optional(inner) => {
                        if let Pattern::Triple(t) = inner.as_mut() {
                            t.id = 0;
                        } else if let Pattern::Group(g) = inner.as_mut() {
                            fix_group(g);
                        }
                    }
                    Pattern::Bind { .. } | Pattern::Values(_) => {}
                    Pattern::SubSelect(q) => fix_group(&mut q.pattern),
                }
            }
        }
        for op in &mut u.ops {
            if let UpdateOp::DeleteInsert { delete, insert, pattern } = op {
                for t in delete.iter_mut().chain(insert.iter_mut()) {
                    t.id = 0;
                }
                fix_group(pattern);
            }
        }
        u
    }

    #[test]
    fn update_round_trip_is_a_fixpoint() {
        let cases = [
            "INSERT DATA { <http://s/1> <http://p/1> \"v\" }",
            "DELETE DATA { <http://s/1> <http://p/1> 42 . <http://s/2> <http://p/2> \"x\"@en }",
            "DELETE { ?s <http://p/1> ?o } WHERE { ?s <http://p/1> ?o }",
            "INSERT { ?s <http://p/2> ?o } WHERE { ?s <http://p/1> ?o FILTER (?o > 3) }",
            "DELETE { ?s <http://p/1> ?o } INSERT { ?s <http://p/2> ?o } \
             WHERE { ?s <http://p/1> ?o }",
            "DELETE WHERE { ?s <http://p/1> ?o }",
            "INSERT DATA { <http://s/1> <http://p/1> \"a\" } ; \
             DELETE DATA { <http://s/1> <http://p/1> \"a\" } ; \
             DELETE { ?s ?p ?o } WHERE { ?s ?p ?o }",
            "INSERT {} WHERE { ?s <http://p/1> ?o }",
        ];
        for case in cases {
            let parsed = parse_update(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            let text = to_sparql_update(&parsed);
            let reparsed =
                parse_update(&text).unwrap_or_else(|e| panic!("{case} -> {text}: {e}"));
            assert_eq!(
                normalized_update(parsed.clone()),
                normalized_update(reparsed.clone()),
                "{case} -> {text}: AST drifted"
            );
            assert_eq!(
                text,
                to_sparql_update(&reparsed),
                "{case}: serializer not idempotent"
            );
        }
    }
}
