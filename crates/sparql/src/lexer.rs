//! SPARQL tokenizer.

use crate::error::SparqlError;

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or bare name, lowercased (`select`, `where`, `a`, ...).
    Word(String),
    /// `?name` or `$name` (sigil stripped).
    Var(String),
    /// `<...>`
    Iri(String),
    /// `prefix:local` (possibly empty prefix).
    PName { prefix: String, local: String },
    /// `_:label`
    BlankNode(String),
    /// String literal body (unescaped), with optional `@lang` / `^^` suffix
    /// handled by the parser via following tokens.
    Str(String),
    /// `@lang` tag (language string without `@`).
    LangTag(String),
    Integer(i64),
    Decimal(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Comma,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    AndAnd,
    OrOr,
    Bang,
    Plus,
    Minus,
    Star,
    Slash,
    /// `^^` datatype marker.
    HatHat,
    Eof,
}

#[derive(Debug, Clone)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

pub fn tokenize(input: &str) -> Result<Vec<Spanned>, SparqlError> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let err = |m: &str, at: usize| SparqlError { message: m.to_string(), offset: at };
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                out.push(Spanned { token: Token::LBrace, offset: i });
                i += 1;
            }
            b'}' => {
                out.push(Spanned { token: Token::RBrace, offset: i });
                i += 1;
            }
            b'(' => {
                out.push(Spanned { token: Token::LParen, offset: i });
                i += 1;
            }
            b')' => {
                out.push(Spanned { token: Token::RParen, offset: i });
                i += 1;
            }
            b'.' => {
                out.push(Spanned { token: Token::Dot, offset: i });
                i += 1;
            }
            b';' => {
                out.push(Spanned { token: Token::Semicolon, offset: i });
                i += 1;
            }
            b',' => {
                out.push(Spanned { token: Token::Comma, offset: i });
                i += 1;
            }
            b'=' => {
                out.push(Spanned { token: Token::Eq, offset: i });
                i += 1;
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { token: Token::NotEq, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Bang, offset: i });
                    i += 1;
                }
            }
            b'<' => {
                // IRI or comparison: IRIREF has no spaces and a closing '>'.
                if let Some(end) = scan_iri(b, i) {
                    let iri = std::str::from_utf8(&b[i + 1..end])
                        .map_err(|_| err("invalid UTF-8 in IRI", i))?;
                    out.push(Spanned { token: Token::Iri(iri.to_string()), offset: i });
                    i = end + 1;
                } else if b.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { token: Token::LtEq, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Lt, offset: i });
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { token: Token::GtEq, offset: i });
                    i += 2;
                } else {
                    out.push(Spanned { token: Token::Gt, offset: i });
                    i += 1;
                }
            }
            b'&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push(Spanned { token: Token::AndAnd, offset: i });
                    i += 2;
                } else {
                    return Err(err("expected &&", i));
                }
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push(Spanned { token: Token::OrOr, offset: i });
                    i += 2;
                } else {
                    return Err(err("expected ||", i));
                }
            }
            b'+' => {
                out.push(Spanned { token: Token::Plus, offset: i });
                i += 1;
            }
            b'-' => {
                out.push(Spanned { token: Token::Minus, offset: i });
                i += 1;
            }
            b'*' => {
                out.push(Spanned { token: Token::Star, offset: i });
                i += 1;
            }
            b'/' => {
                out.push(Spanned { token: Token::Slash, offset: i });
                i += 1;
            }
            b'^' => {
                if b.get(i + 1) == Some(&b'^') {
                    out.push(Spanned { token: Token::HatHat, offset: i });
                    i += 2;
                } else {
                    return Err(err("expected ^^", i));
                }
            }
            b'?' | b'$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(err("empty variable name", i));
                }
                let name = std::str::from_utf8(&b[start..j]).unwrap().to_string();
                out.push(Spanned { token: Token::Var(name), offset: i });
                i = j;
            }
            b'@' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'-') {
                    j += 1;
                }
                if j == start {
                    return Err(err("empty language tag", i));
                }
                let tag = std::str::from_utf8(&b[start..j]).unwrap().to_string();
                out.push(Spanned { token: Token::LangTag(tag), offset: i });
                i = j;
            }
            b'"' | b'\'' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(err("unterminated string literal", start));
                    }
                    if b[i] == quote {
                        i += 1;
                        break;
                    }
                    if b[i] == b'\\' {
                        i += 1;
                        if i >= b.len() {
                            return Err(err("dangling escape", start));
                        }
                        match b[i] {
                            b'n' => s.push('\n'),
                            b'r' => s.push('\r'),
                            b't' => s.push('\t'),
                            b'\\' => s.push('\\'),
                            b'"' => s.push('"'),
                            b'\'' => s.push('\''),
                            b'u' => {
                                let hex = std::str::from_utf8(&b[i + 1..i + 5])
                                    .map_err(|_| err("bad \\u escape", i))?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| err("bad \\u escape", i))?;
                                s.push(
                                    char::from_u32(cp).ok_or_else(|| err("bad codepoint", i))?,
                                );
                                i += 4;
                            }
                            other => {
                                return Err(err(
                                    &format!("unknown escape \\{}", other as char),
                                    i,
                                ))
                            }
                        }
                        i += 1;
                    } else {
                        let len = utf8_len(b[i]);
                        s.push_str(
                            std::str::from_utf8(&b[i..i + len])
                                .map_err(|_| err("invalid UTF-8", i))?,
                        );
                        i += len;
                    }
                }
                out.push(Spanned { token: Token::Str(s), offset: start });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = std::str::from_utf8(&b[start..i]).unwrap();
                    out.push(Spanned {
                        token: Token::Decimal(
                            text.parse().map_err(|_| err("bad decimal", start))?,
                        ),
                        offset: start,
                    });
                } else {
                    let text = std::str::from_utf8(&b[start..i]).unwrap();
                    out.push(Spanned {
                        token: Token::Integer(
                            text.parse().map_err(|_| err("integer out of range", start))?,
                        ),
                        offset: start,
                    });
                }
            }
            b'_' if b.get(i + 1) == Some(&b':') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(err("empty blank node label", i));
                }
                out.push(Spanned {
                    token: Token::BlankNode(
                        std::str::from_utf8(&b[start..j]).unwrap().to_string(),
                    ),
                    offset: i,
                });
                i = j;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                // word, or prefixed name `prefix:local`
                let start = i;
                let mut j = i;
                while j < b.len()
                    && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'-')
                {
                    j += 1;
                }
                if j < b.len() && b[j] == b':' {
                    let prefix = std::str::from_utf8(&b[start..j]).unwrap().to_string();
                    let lstart = j + 1;
                    let mut k = lstart;
                    while k < b.len()
                        && (b[k].is_ascii_alphanumeric()
                            || b[k] == b'_'
                            || b[k] == b'-'
                            || b[k] == b'.')
                    {
                        k += 1;
                    }
                    // trailing dot belongs to the triple terminator
                    let mut end = k;
                    while end > lstart && b[end - 1] == b'.' {
                        end -= 1;
                    }
                    let local = std::str::from_utf8(&b[lstart..end]).unwrap().to_string();
                    out.push(Spanned { token: Token::PName { prefix, local }, offset: start });
                    i = end;
                } else {
                    let word =
                        std::str::from_utf8(&b[start..j]).unwrap().to_ascii_lowercase();
                    out.push(Spanned { token: Token::Word(word), offset: start });
                    i = j;
                }
            }
            b':' => {
                // prefixed name with empty prefix
                let lstart = i + 1;
                let mut k = lstart;
                while k < b.len()
                    && (b[k].is_ascii_alphanumeric() || b[k] == b'_' || b[k] == b'-')
                {
                    k += 1;
                }
                let local = std::str::from_utf8(&b[lstart..k]).unwrap().to_string();
                out.push(Spanned {
                    token: Token::PName { prefix: String::new(), local },
                    offset: i,
                });
                i = k;
            }
            _ => return Err(err(&format!("unexpected character {:?}", c as char), i)),
        }
    }
    out.push(Spanned { token: Token::Eof, offset: input.len() });
    Ok(out)
}

/// Try to scan an IRIREF starting at `<`; returns the index of `>`.
fn scan_iri(b: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'>' => return Some(i),
            b' ' | b'\t' | b'\r' | b'\n' | b'<' | b'"' | b'{' | b'}' | b'|' | b'^' | b'`' => {
                return None
            }
            _ => i += 1,
        }
    }
    None
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn variables_and_iris() {
        assert_eq!(
            toks("SELECT ?x WHERE { ?x <http://p> $y }"),
            vec![
                Token::Word("select".into()),
                Token::Var("x".into()),
                Token::Word("where".into()),
                Token::LBrace,
                Token::Var("x".into()),
                Token::Iri("http://p".into()),
                Token::Var("y".into()),
                Token::RBrace,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn iri_vs_less_than() {
        assert_eq!(
            toks("?x < 5 && ?y <= <http://a>"),
            vec![
                Token::Var("x".into()),
                Token::Lt,
                Token::Integer(5),
                Token::AndAnd,
                Token::Var("y".into()),
                Token::LtEq,
                Token::Iri("http://a".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn prefixed_names() {
        assert_eq!(
            toks("foaf:name rdf:type ."),
            vec![
                Token::PName { prefix: "foaf".into(), local: "name".into() },
                Token::PName { prefix: "rdf".into(), local: "type".into() },
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn pname_trailing_dot_is_terminator() {
        assert_eq!(
            toks("?s ub:memberOf ub:Dept0."),
            vec![
                Token::Var("s".into()),
                Token::PName { prefix: "ub".into(), local: "memberOf".into() },
                Token::PName { prefix: "ub".into(), local: "Dept0".into() },
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn literals_with_lang_and_datatype() {
        assert_eq!(
            toks("\"hi\"@en '5'^^xsd:int"),
            vec![
                Token::Str("hi".into()),
                Token::LangTag("en".into()),
                Token::Str("5".into()),
                Token::HatHat,
                Token::PName { prefix: "xsd".into(), local: "int".into() },
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_numbers() {
        assert_eq!(
            toks("# comment\n42 3.5"),
            vec![Token::Integer(42), Token::Decimal(3.5), Token::Eof]
        );
    }

    #[test]
    fn blank_nodes() {
        assert_eq!(toks("_:b1"), vec![Token::BlankNode("b1".into()), Token::Eof]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\"b\nc""#), vec![Token::Str("a\"b\nc".into()), Token::Eof]);
    }
}
