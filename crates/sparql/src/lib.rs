//! SPARQL 1.0 front end for the DB2RDF reproduction.
//!
//! Parses the SPARQL subset used by the paper's workloads into the pattern
//! tree of §3.1 (AND/OR/OPTIONAL nodes with triple-pattern leaves, group-
//! scoped FILTERs). Triple patterns are tagged with stable ids (`t1`, `t2`,
//! ...) in parse order, matching the paper's notation.
//!
//! ```
//! use sparql::parse_sparql;
//!
//! let q = parse_sparql("SELECT ?x WHERE { ?x <http://home> 'Palo Alto' }").unwrap();
//! assert_eq!(q.projected_variables(), vec!["x"]);
//! ```

pub mod ast;
mod error;
pub mod fmt;
mod lexer;
mod parser;

pub use ast::{
    AggFunc, ArithOp, CompareOp, Expression, GroupPattern, OrderCondition, Pattern, Query,
    QueryForm, SelectItem, SelectVars, TermPattern, TriplePattern, Update, UpdateOp, ValuesBlock,
};
pub use error::SparqlError;
pub use fmt::{to_sparql, to_sparql_update};
pub use parser::{parse_sparql, parse_update};
