//! Recursive-descent SPARQL parser for the subset used throughout the
//! paper's workloads: SELECT / ASK, basic graph patterns with `;`/`,`
//! abbreviations, GROUP / UNION / OPTIONAL nesting, FILTER expressions,
//! DISTINCT / REDUCED, ORDER BY, LIMIT and OFFSET — plus the SPARQL 1.1
//! analytic surface: aggregates (COUNT/SUM/AVG/MIN/MAX, `COUNT(*)`,
//! DISTINCT inside aggregates), GROUP BY / HAVING, `(expr AS ?v)`
//! projections, BIND, inline VALUES, and nested `{ SELECT ... }`
//! subqueries.

use std::collections::HashMap;

use rdf::{Term, Triple};

use crate::ast::*;
use crate::error::SparqlError;
use crate::lexer::{tokenize, Spanned, Token};

pub fn parse_sparql(input: &str) -> Result<Query, SparqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
        next_triple_id: 1,
    };
    p.query()
}

/// Parse a SPARQL 1.1 Update request: `;`-separated `INSERT DATA`,
/// `DELETE DATA` and `DELETE/INSERT ... WHERE` operations sharing one
/// prologue scope (a PREFIX may also be re-declared between operations).
pub fn parse_update(input: &str) -> Result<Update, SparqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
        next_triple_id: 1,
    };
    p.update()
}

const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    prefixes: HashMap<String, String>,
    next_triple_id: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, SparqlError> {
        Err(SparqlError { message: msg.into(), offset: self.tokens[self.pos].offset })
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), SparqlError> {
        if self.eat(t) {
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if matches!(self.peek(), Token::Word(x) if x == w) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn peek_word(&self, w: &str) -> bool {
        matches!(self.peek(), Token::Word(x) if x == w)
    }

    fn expect_word(&mut self, w: &str) -> Result<(), SparqlError> {
        if self.eat_word(w) {
            Ok(())
        } else {
            self.err(format!("expected {}", w.to_uppercase()))
        }
    }

    fn fresh_triple_id(&mut self) -> usize {
        let id = self.next_triple_id;
        self.next_triple_id += 1;
        id
    }

    // ---- top level ----

    fn prologue(&mut self) -> Result<(), SparqlError> {
        loop {
            if self.eat_word("prefix") {
                let (prefix, _local) = match self.advance() {
                    Token::PName { prefix, local } => (prefix, local),
                    other => return self.err(format!("expected prefix name, found {other:?}")),
                };
                let iri = match self.advance() {
                    Token::Iri(i) => i,
                    other => return self.err(format!("expected IRI, found {other:?}")),
                };
                self.prefixes.insert(prefix, iri);
            } else if self.eat_word("base") {
                match self.advance() {
                    Token::Iri(_) => {} // BASE accepted and ignored (all our IRIs are absolute)
                    other => return self.err(format!("expected IRI after BASE, found {other:?}")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn query(&mut self) -> Result<Query, SparqlError> {
        self.prologue()?;
        let q = self.query_body()?;
        if !matches!(self.peek(), Token::Eof) {
            return self.err(format!("unexpected trailing input: {:?}", self.peek()));
        }
        Ok(q)
    }

    /// SELECT/ASK + WHERE + solution modifiers, without the trailing-input
    /// check — shared by top-level queries and `{ SELECT ... }` subqueries.
    fn query_body(&mut self) -> Result<Query, SparqlError> {
        let form = if self.eat_word("select") {
            let distinct = self.eat_word("distinct") || self.eat_word("reduced");
            QueryForm::Select { vars: self.select_clause()?, distinct }
        } else if self.eat_word("ask") {
            QueryForm::Ask
        } else {
            return self.err("expected SELECT or ASK");
        };

        let _ = self.eat_word("where");
        let pattern = self.group_graph_pattern()?;

        let mut group_by = Vec::new();
        if self.eat_word("group") {
            self.expect_word("by")?;
            while let Token::Var(v) = self.peek().clone() {
                self.advance();
                group_by.push(v);
            }
            if group_by.is_empty() {
                return self.err("GROUP BY requires at least one variable");
            }
        }
        let mut having = Vec::new();
        while self.eat_word("having") {
            self.expect(&Token::LParen)?;
            having.push(self.expression()?);
            self.expect(&Token::RParen)?;
        }

        let mut order_by = Vec::new();
        if self.eat_word("order") {
            self.expect_word("by")?;
            loop {
                if self.eat_word("asc") {
                    self.expect(&Token::LParen)?;
                    let e = self.expression()?;
                    self.expect(&Token::RParen)?;
                    order_by.push(OrderCondition { expr: e, ascending: true });
                } else if self.eat_word("desc") {
                    self.expect(&Token::LParen)?;
                    let e = self.expression()?;
                    self.expect(&Token::RParen)?;
                    order_by.push(OrderCondition { expr: e, ascending: false });
                } else if let Token::Var(v) = self.peek().clone() {
                    self.advance();
                    order_by.push(OrderCondition { expr: Expression::Var(v), ascending: true });
                } else {
                    break;
                }
            }
            if order_by.is_empty() {
                return self.err("ORDER BY requires at least one condition");
            }
        }
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_word("limit") {
                match self.advance() {
                    Token::Integer(n) if n >= 0 => limit = Some(n as u64),
                    _ => return self.err("expected non-negative integer after LIMIT"),
                }
            } else if self.eat_word("offset") {
                match self.advance() {
                    Token::Integer(n) if n >= 0 => offset = Some(n as u64),
                    _ => return self.err("expected non-negative integer after OFFSET"),
                }
            } else {
                break;
            }
        }
        let q = Query { form, pattern, group_by, having, order_by, limit, offset };
        self.check_query(&q)?;
        Ok(q)
    }

    /// The projection list after SELECT [DISTINCT]: `*`, plain variables,
    /// or a mix of variables and `(expr AS ?v)` items.
    fn select_clause(&mut self) -> Result<SelectVars, SparqlError> {
        if self.eat(&Token::Star) {
            return Ok(SelectVars::All);
        }
        let mut items: Vec<SelectItem> = Vec::new();
        let mut has_expr = false;
        loop {
            match self.peek().clone() {
                Token::Var(v) => {
                    self.advance();
                    items.push(SelectItem { expr: None, var: v });
                }
                Token::LParen => {
                    self.advance();
                    let expr = self.expression()?;
                    self.expect_word("as")?;
                    let var = match self.advance() {
                        Token::Var(v) => v,
                        other => {
                            return self.err(format!("expected variable after AS, found {other:?}"))
                        }
                    };
                    self.expect(&Token::RParen)?;
                    has_expr = true;
                    items.push(SelectItem { expr: Some(expr), var });
                }
                _ => break,
            }
        }
        if items.is_empty() {
            return self.err("SELECT requires * or at least one variable");
        }
        for (i, item) in items.iter().enumerate() {
            if items[..i].iter().any(|p| p.var == item.var) {
                return self.err(format!("duplicate projection of ?{}", item.var));
            }
        }
        if has_expr {
            Ok(SelectVars::Items(items))
        } else {
            Ok(SelectVars::Vars(items.into_iter().map(|i| i.var).collect()))
        }
    }

    /// Static well-formedness checks the grammar alone cannot express:
    /// grouped-query projection scope and `AS` target freshness.
    fn check_query(&self, q: &Query) -> Result<(), SparqlError> {
        if matches!(q.form, QueryForm::Ask) && (!q.group_by.is_empty() || !q.having.is_empty()) {
            return self.err("GROUP BY / HAVING cannot be used with ASK");
        }
        let visible = Pattern::Group(q.pattern.clone()).variables();
        if let QueryForm::Select { vars, .. } = &q.form {
            if let SelectVars::Items(items) = vars {
                for item in items {
                    if item.expr.is_some() && visible.iter().any(|v| v == &item.var) {
                        return self.err(format!(
                            "AS target ?{} is already bound in the WHERE clause",
                            item.var
                        ));
                    }
                }
            }
            if q.is_aggregate() {
                if matches!(vars, SelectVars::All) {
                    return self.err("SELECT * cannot be used with GROUP BY or aggregates");
                }
                // Every plainly projected variable must be a grouping key.
                let plain: Vec<&str> = match vars {
                    SelectVars::Vars(vs) => vs.iter().map(String::as_str).collect(),
                    SelectVars::Items(items) => items
                        .iter()
                        .filter(|i| i.expr.is_none())
                        .map(|i| i.var.as_str())
                        .collect(),
                    SelectVars::All => Vec::new(),
                };
                for v in plain {
                    if !q.group_by.iter().any(|g| g == v) {
                        return self.err(format!(
                            "?{v} is projected but not grouped: add it to GROUP BY or \
                             wrap it in an aggregate"
                        ));
                    }
                }
                // Variables appearing outside aggregates in computed
                // projection items must also be grouping keys.
                if let SelectVars::Items(items) = vars {
                    for item in items {
                        let Some(expr) = &item.expr else { continue };
                        for v in expr.non_aggregated_variables() {
                            if !q.group_by.iter().any(|g| g == v) {
                                return self.err(format!(
                                    "?{v} is used outside an aggregate but is not grouped"
                                ));
                            }
                        }
                    }
                }
            }
        }
        for h in &q.having {
            // Any variable HAVING uses outside an aggregate must be a
            // grouping key — whether or not the condition also aggregates.
            for v in h.non_aggregated_variables() {
                if !q.group_by.iter().any(|g| g == v) {
                    return self.err(format!("HAVING references ungrouped variable ?{v}"));
                }
            }
        }
        Ok(())
    }

    // ---- SPARQL 1.1 Update ----

    fn update(&mut self) -> Result<Update, SparqlError> {
        let mut ops = Vec::new();
        loop {
            self.prologue()?;
            if matches!(self.peek(), Token::Eof) {
                break;
            }
            ops.push(self.update_op()?);
            if !self.eat(&Token::Semicolon) {
                break;
            }
        }
        if !matches!(self.peek(), Token::Eof) {
            return self.err(format!("unexpected trailing input: {:?}", self.peek()));
        }
        if ops.is_empty() {
            return self.err("empty update request");
        }
        Ok(Update { ops })
    }

    fn update_op(&mut self) -> Result<UpdateOp, SparqlError> {
        if self.eat_word("insert") {
            if self.eat_word("data") {
                return Ok(UpdateOp::InsertData(self.ground_triples_block()?));
            }
            let insert = self.template_block()?;
            self.expect_word("where")?;
            let pattern = self.group_graph_pattern()?;
            return Ok(UpdateOp::DeleteInsert { delete: Vec::new(), insert, pattern });
        }
        if self.eat_word("delete") {
            if self.eat_word("data") {
                return Ok(UpdateOp::DeleteData(self.ground_triples_block()?));
            }
            if self.eat_word("where") {
                // DELETE WHERE { bgp }: the pattern doubles as the template.
                let at = self.pos;
                let pattern = self.group_graph_pattern()?;
                if !pattern.filters.is_empty()
                    || pattern.children.iter().any(|c| !matches!(c, Pattern::Triple(_)))
                {
                    self.pos = at;
                    return self.err(
                        "DELETE WHERE supports only a plain basic graph pattern \
                         (no FILTER/OPTIONAL/UNION/nested groups)",
                    );
                }
                let delete: Vec<TriplePattern> =
                    pattern.children.iter().filter_map(|c| match c {
                        Pattern::Triple(t) => Some(t.clone()),
                        _ => None,
                    }).collect();
                self.check_template(&delete)?;
                return Ok(UpdateOp::DeleteInsert { delete, insert: Vec::new(), pattern });
            }
            let delete = self.template_block()?;
            let insert = if self.eat_word("insert") {
                self.template_block()?
            } else {
                Vec::new()
            };
            self.expect_word("where")?;
            let pattern = self.group_graph_pattern()?;
            return Ok(UpdateOp::DeleteInsert { delete, insert, pattern });
        }
        self.err("expected INSERT or DELETE")
    }

    /// `{ triples }` — the body shared by DATA payloads and templates.
    fn braced_triples(&mut self) -> Result<Vec<TriplePattern>, SparqlError> {
        self.expect(&Token::LBrace)?;
        let mut out = Vec::new();
        loop {
            if self.eat(&Token::RBrace) {
                break;
            }
            out.extend(self.triples_same_subject()?);
            if !self.eat(&Token::Dot) {
                self.expect(&Token::RBrace)?;
                break;
            }
        }
        Ok(out)
    }

    /// A DELETE/INSERT template: triple patterns that may mention WHERE
    /// variables. Blank nodes are rejected — the W3C blank-node-minting
    /// semantics would make updates non-deterministic, which the
    /// differential oracle cannot tolerate.
    fn template_block(&mut self) -> Result<Vec<TriplePattern>, SparqlError> {
        let triples = self.braced_triples()?;
        self.check_template(&triples)?;
        Ok(triples)
    }

    fn check_template(&self, triples: &[TriplePattern]) -> Result<(), SparqlError> {
        for t in triples {
            for tp in [&t.subject, &t.predicate, &t.object] {
                if matches!(tp, TermPattern::Var(v) if v.starts_with("_:")) {
                    return self.err("blank nodes are not supported in update templates");
                }
            }
        }
        Ok(())
    }

    /// A DATA payload: ground triples only (no variables, no blank nodes),
    /// subjects and predicates positionally valid RDF.
    fn ground_triples_block(&mut self) -> Result<Vec<Triple>, SparqlError> {
        let patterns = self.braced_triples()?;
        let mut out = Vec::with_capacity(patterns.len());
        for tp in patterns {
            let subject = self.ground_term(tp.subject, "subject")?;
            let predicate = self.ground_term(tp.predicate, "predicate")?;
            let object = self.ground_term(tp.object, "object")?;
            if subject.is_literal() {
                return self.err("literal subjects are not valid in DATA blocks");
            }
            if !predicate.is_iri() {
                return self.err("predicates in DATA blocks must be IRIs");
            }
            out.push(Triple::new(subject, predicate, object));
        }
        Ok(out)
    }

    fn ground_term(&self, tp: TermPattern, pos: &str) -> Result<Term, SparqlError> {
        match tp {
            TermPattern::Term(t) => Ok(t),
            TermPattern::Var(v) if v.starts_with("_:") => {
                self.err(format!("blank nodes are not supported in DATA blocks ({pos})"))
            }
            TermPattern::Var(v) => {
                self.err(format!("variable ?{v} is not allowed in a DATA block ({pos})"))
            }
        }
    }

    // ---- patterns ----

    fn group_graph_pattern(&mut self) -> Result<GroupPattern, SparqlError> {
        self.expect(&Token::LBrace)?;
        let mut group = GroupPattern::default();
        loop {
            match self.peek().clone() {
                Token::RBrace => {
                    self.advance();
                    break;
                }
                Token::Word(w) if w == "filter" => {
                    self.advance();
                    let e = self.constraint()?;
                    if e.has_aggregate() {
                        return self.err("aggregate calls are not allowed in FILTER");
                    }
                    group.filters.push(e);
                    let _ = self.eat(&Token::Dot);
                }
                Token::Word(w) if w == "optional" => {
                    self.advance();
                    let inner = self.group_graph_pattern()?;
                    group.children.push(Pattern::Optional(Box::new(Pattern::Group(inner))));
                    let _ = self.eat(&Token::Dot);
                }
                Token::Word(w) if w == "bind" => {
                    self.advance();
                    self.expect(&Token::LParen)?;
                    let expr = self.expression()?;
                    if expr.has_aggregate() {
                        return self.err("aggregate calls are not allowed in BIND");
                    }
                    self.expect_word("as")?;
                    let var = match self.advance() {
                        Token::Var(v) => v,
                        other => {
                            return self.err(format!("expected variable after AS, found {other:?}"))
                        }
                    };
                    self.expect(&Token::RParen)?;
                    // SPARQL scope rule: the BIND target must be fresh with
                    // respect to the preceding elements of this group.
                    if group.children.iter().any(|c| c.variables().iter().any(|v| v == &var)) {
                        return self.err(format!("BIND target ?{var} is already bound"));
                    }
                    group.children.push(Pattern::Bind { expr, var });
                    let _ = self.eat(&Token::Dot);
                }
                Token::Word(w) if w == "values" => {
                    self.advance();
                    group.children.push(Pattern::Values(self.values_block()?));
                    let _ = self.eat(&Token::Dot);
                }
                Token::LBrace if self.next_is_subselect() => {
                    self.advance(); // `{`
                    let inner = self.query_body()?;
                    if matches!(inner.form, QueryForm::Ask) {
                        return self.err("subqueries must be SELECT queries");
                    }
                    self.expect(&Token::RBrace)?;
                    group.children.push(Pattern::SubSelect(Box::new(inner)));
                    let _ = self.eat(&Token::Dot);
                }
                Token::LBrace => {
                    // group, possibly UNION chain
                    let mut alternatives = vec![Pattern::Group(self.group_graph_pattern()?)];
                    while self.eat_word("union") {
                        alternatives.push(Pattern::Group(self.group_graph_pattern()?));
                    }
                    if alternatives.len() == 1 {
                        group.children.push(alternatives.pop().unwrap());
                    } else {
                        group.children.push(Pattern::Union(alternatives));
                    }
                    let _ = self.eat(&Token::Dot);
                }
                _ => {
                    // triples block
                    let triples = self.triples_same_subject()?;
                    group.children.extend(triples.into_iter().map(Pattern::Triple));
                    if !self.eat(&Token::Dot) {
                        // '.' is optional before '}' and before non-triple items
                        match self.peek() {
                            Token::RBrace | Token::LBrace => {}
                            Token::Word(w)
                                if w == "filter"
                                    || w == "optional"
                                    || w == "bind"
                                    || w == "values" => {}
                            _ => return self.err("expected '.', '}' or pattern keyword"),
                        }
                    }
                }
            }
        }
        Ok(group)
    }

    /// Whether the `{` at the cursor opens a `{ SELECT ... }` subquery.
    fn next_is_subselect(&self) -> bool {
        matches!(
            self.tokens.get(self.pos + 1).map(|s| &s.token),
            Some(Token::Word(w)) if w == "select"
        )
    }

    /// An inline data block: `VALUES ?v { t1 t2 ... }` or
    /// `VALUES (?a ?b) { (t1 t2) (UNDEF t3) ... }`.
    fn values_block(&mut self) -> Result<ValuesBlock, SparqlError> {
        let mut vars = Vec::new();
        let single = !matches!(self.peek(), Token::LParen);
        if single {
            match self.advance() {
                Token::Var(v) => vars.push(v),
                other => return self.err(format!("expected variable after VALUES, found {other:?}")),
            }
        } else {
            self.advance(); // `(`
            while let Token::Var(v) = self.peek().clone() {
                self.advance();
                vars.push(v);
            }
            self.expect(&Token::RParen)?;
            if vars.is_empty() {
                return self.err("VALUES requires at least one variable");
            }
        }
        for (i, v) in vars.iter().enumerate() {
            if vars[..i].contains(v) {
                return self.err(format!("duplicate VALUES variable ?{v}"));
            }
        }
        self.expect(&Token::LBrace)?;
        let mut rows = Vec::new();
        loop {
            if self.eat(&Token::RBrace) {
                break;
            }
            if single {
                rows.push(vec![self.values_term()?]);
            } else {
                self.expect(&Token::LParen)?;
                let mut row = Vec::with_capacity(vars.len());
                for _ in 0..vars.len() {
                    row.push(self.values_term()?);
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
            }
        }
        Ok(ValuesBlock { vars, rows })
    }

    fn values_term(&mut self) -> Result<Option<Term>, SparqlError> {
        if self.eat_word("undef") {
            return Ok(None);
        }
        match self.var_or_term()? {
            TermPattern::Term(t) => Ok(Some(t)),
            TermPattern::Var(_) => self.err("VALUES data must be constant terms or UNDEF"),
        }
    }

    fn triples_same_subject(&mut self) -> Result<Vec<TriplePattern>, SparqlError> {
        let subject = self.var_or_term()?;
        let mut out = Vec::new();
        loop {
            let predicate = self.verb()?;
            loop {
                let object = self.var_or_term()?;
                out.push(TriplePattern {
                    id: self.fresh_triple_id(),
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            if self.eat(&Token::Semicolon) {
                // allow trailing semicolon before '.' or '}'
                if matches!(self.peek(), Token::Dot | Token::RBrace) {
                    break;
                }
                continue;
            }
            break;
        }
        Ok(out)
    }

    fn verb(&mut self) -> Result<TermPattern, SparqlError> {
        if self.peek_word("a") {
            self.advance();
            return Ok(TermPattern::Term(Term::iri(RDF_TYPE)));
        }
        self.var_or_term()
    }

    fn var_or_term(&mut self) -> Result<TermPattern, SparqlError> {
        match self.advance() {
            Token::Var(v) => Ok(TermPattern::Var(v)),
            Token::Iri(i) => Ok(TermPattern::Term(Term::iri(i))),
            Token::PName { prefix, local } => {
                Ok(TermPattern::Term(Term::iri(self.expand(&prefix, &local)?)))
            }
            // Blank nodes in query position act as non-projectable variables.
            Token::BlankNode(label) => Ok(TermPattern::Var(format!("_:b_{label}"))),
            Token::Str(s) => {
                if let Token::LangTag(tag) = self.peek().clone() {
                    self.advance();
                    Ok(TermPattern::Term(Term::lang_lit(s, tag)))
                } else if self.eat(&Token::HatHat) {
                    let dt = match self.advance() {
                        Token::Iri(i) => i,
                        Token::PName { prefix, local } => self.expand(&prefix, &local)?,
                        other => {
                            return self.err(format!("expected datatype IRI, found {other:?}"))
                        }
                    };
                    Ok(TermPattern::Term(Term::typed_lit(s, dt)))
                } else {
                    Ok(TermPattern::Term(Term::lit(s)))
                }
            }
            Token::Integer(n) => Ok(TermPattern::Term(Term::typed_lit(n.to_string(), XSD_INTEGER))),
            Token::Decimal(d) => Ok(TermPattern::Term(Term::typed_lit(d.to_string(), XSD_DECIMAL))),
            other => self.err(format!("expected variable or RDF term, found {other:?}")),
        }
    }

    fn expand(&self, prefix: &str, local: &str) -> Result<String, SparqlError> {
        match self.prefixes.get(prefix) {
            Some(base) => Ok(format!("{base}{local}")),
            None => Err(SparqlError {
                message: format!("undeclared prefix {prefix:?}"),
                offset: self.tokens[self.pos].offset,
            }),
        }
    }

    // ---- expressions ----

    fn constraint(&mut self) -> Result<Expression, SparqlError> {
        if matches!(self.peek(), Token::LParen) {
            self.advance();
            let e = self.expression()?;
            self.expect(&Token::RParen)?;
            Ok(e)
        } else {
            self.builtin_call()
        }
    }

    fn expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.and_expression()?;
        while self.eat(&Token::OrOr) {
            let right = self.and_expression()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.relational()?;
        while self.eat(&Token::AndAnd) {
            let right = self.relational()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn relational(&mut self) -> Result<Expression, SparqlError> {
        let left = self.additive()?;
        let op = match self.peek() {
            Token::Eq => CompareOp::Eq,
            Token::NotEq => CompareOp::NotEq,
            Token::Lt => CompareOp::Lt,
            Token::LtEq => CompareOp::LtEq,
            Token::Gt => CompareOp::Gt,
            Token::GtEq => CompareOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expression::Compare { op, left: Box::new(left), right: Box::new(right) })
    }

    fn additive(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => ArithOp::Add,
                Token::Minus => ArithOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expression::Arith { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => ArithOp::Mul,
                Token::Slash => ArithOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expression::Arith { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expression, SparqlError> {
        if self.eat(&Token::Bang) {
            Ok(Expression::Not(Box::new(self.unary()?)))
        } else if self.eat(&Token::Minus) {
            Ok(Expression::Neg(Box::new(self.unary()?)))
        } else if self.eat(&Token::Plus) {
            self.unary()
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expression, SparqlError> {
        match self.peek().clone() {
            Token::LParen => {
                self.advance();
                let e = self.expression()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Var(v) => {
                self.advance();
                Ok(Expression::Var(v))
            }
            Token::Word(_) => self.builtin_call(),
            _ => {
                let tp = self.var_or_term()?;
                match tp {
                    TermPattern::Var(v) => Ok(Expression::Var(v)),
                    TermPattern::Term(t) => Ok(Expression::Term(t)),
                }
            }
        }
    }

    fn builtin_call(&mut self) -> Result<Expression, SparqlError> {
        let name = match self.advance() {
            Token::Word(w) => w,
            other => return self.err(format!("expected builtin call, found {other:?}")),
        };
        self.expect(&Token::LParen)?;
        let expr = match name.as_str() {
            "bound" => {
                let v = match self.advance() {
                    Token::Var(v) => v,
                    other => return self.err(format!("BOUND expects a variable, found {other:?}")),
                };
                Expression::Bound(v)
            }
            "regex" => {
                let e = self.expression()?;
                self.expect(&Token::Comma)?;
                let pattern = match self.advance() {
                    Token::Str(s) => s,
                    other => {
                        return self.err(format!("REGEX expects a string pattern, found {other:?}"))
                    }
                };
                let mut ci = false;
                if self.eat(&Token::Comma) {
                    match self.advance() {
                        Token::Str(flags) => ci = flags.contains('i'),
                        other => {
                            return self.err(format!("REGEX expects string flags, found {other:?}"))
                        }
                    }
                }
                Expression::Regex { expr: Box::new(e), pattern, case_insensitive: ci }
            }
            "str" => Expression::Str(Box::new(self.expression()?)),
            "lang" => Expression::Lang(Box::new(self.expression()?)),
            "datatype" => Expression::Datatype(Box::new(self.expression()?)),
            "isiri" | "isuri" => Expression::IsIri(Box::new(self.expression()?)),
            "isliteral" => Expression::IsLiteral(Box::new(self.expression()?)),
            "isblank" => Expression::IsBlank(Box::new(self.expression()?)),
            "count" | "sum" | "avg" | "min" | "max" => {
                let func = match name.as_str() {
                    "count" => AggFunc::Count,
                    "sum" => AggFunc::Sum,
                    "avg" => AggFunc::Avg,
                    "min" => AggFunc::Min,
                    _ => AggFunc::Max,
                };
                let distinct = self.eat_word("distinct");
                if self.eat(&Token::Star) {
                    if func != AggFunc::Count {
                        return self.err(format!("{}(*) is not valid SPARQL", func.name()));
                    }
                    if distinct {
                        return self.err("COUNT(DISTINCT *) is not supported");
                    }
                    Expression::Aggregate { func, distinct: false, arg: None }
                } else {
                    let e = self.expression()?;
                    if e.has_aggregate() {
                        return self.err("nested aggregate calls are not allowed");
                    }
                    Expression::Aggregate { func, distinct, arg: Some(Box::new(e)) }
                }
            }
            other => return self.err(format!("unsupported builtin {other:?}")),
        };
        self.expect(&Token::RParen)?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(q: &str) -> Query {
        parse_sparql(q).unwrap()
    }

    #[test]
    fn simple_bgp() {
        let q = parse("SELECT ?s WHERE { ?s <http://p> 'v' . ?s <http://q> ?o }");
        assert_eq!(q.projected_variables(), vec!["s"]);
        assert_eq!(q.triple_count(), 2);
        let pat = Pattern::Group(q.pattern.clone());
        let triples = pat.triples();
        assert_eq!(triples[0].id, 1);
        assert_eq!(triples[1].id, 2);
        assert_eq!(triples[0].object, TermPattern::Term(Term::lit("v")));
    }

    #[test]
    fn prefixes_and_a() {
        let q = parse(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>
             SELECT * WHERE { ?x a foaf:Person ; foaf:name ?n }",
        );
        let pat = Pattern::Group(q.pattern.clone());
        let triples = pat.triples();
        assert_eq!(
            triples[0].predicate,
            TermPattern::Term(Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"))
        );
        assert_eq!(
            triples[0].object,
            TermPattern::Term(Term::iri("http://xmlns.com/foaf/0.1/Person"))
        );
        assert_eq!(
            triples[1].predicate,
            TermPattern::Term(Term::iri("http://xmlns.com/foaf/0.1/name"))
        );
        // same subject via ';'
        assert_eq!(triples[0].subject, triples[1].subject);
    }

    #[test]
    fn object_lists() {
        let q = parse("SELECT * WHERE { ?x <http://p> ?a, ?b, ?c }");
        assert_eq!(q.triple_count(), 3);
    }

    #[test]
    fn union_and_optional_structure() {
        let q = parse(
            "SELECT ?x WHERE {
               ?x <http://home> 'Palo Alto' .
               { ?x <http://founder> ?y } UNION { ?x <http://member> ?y }
               OPTIONAL { ?y <http://employees> ?m }
             }",
        );
        assert_eq!(q.pattern.children.len(), 3);
        assert!(matches!(q.pattern.children[0], Pattern::Triple(_)));
        assert!(matches!(&q.pattern.children[1], Pattern::Union(alts) if alts.len() == 2));
        assert!(matches!(q.pattern.children[2], Pattern::Optional(_)));
    }

    #[test]
    fn nested_groups() {
        let q = parse(
            "SELECT * WHERE { { ?a <http://p> ?b . { ?b <http://q> ?c } } }",
        );
        assert_eq!(q.triple_count(), 2);
    }

    #[test]
    fn filters_attach_to_group() {
        let q = parse(
            "SELECT ?x WHERE { ?x <http://age> ?a . FILTER (?a > 30 && ?a != 99) }",
        );
        assert_eq!(q.pattern.filters.len(), 1);
        match &q.pattern.filters[0] {
            Expression::And(l, _) => {
                assert!(matches!(**l, Expression::Compare { op: CompareOp::Gt, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builtin_filters() {
        let q = parse(
            "SELECT ?x WHERE { ?x <http://name> ?n .
             FILTER regex(?n, 'smith', 'i') FILTER (bound(?n) && isLiteral(?n)) }",
        );
        assert_eq!(q.pattern.filters.len(), 2);
        assert!(matches!(
            &q.pattern.filters[0],
            Expression::Regex { case_insensitive: true, .. }
        ));
    }

    #[test]
    fn solution_modifiers() {
        let q = parse(
            "SELECT DISTINCT ?x WHERE { ?x <http://p> ?y } ORDER BY DESC(?y) ?x LIMIT 5 OFFSET 10",
        );
        assert!(q.is_distinct());
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert!(q.order_by[1].ascending);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, Some(10));
    }

    #[test]
    fn ask_query() {
        let q = parse("ASK { ?x <http://p> 'v' }");
        assert_eq!(q.form, QueryForm::Ask);
    }

    #[test]
    fn numeric_literals_become_typed_terms() {
        let q = parse("SELECT * WHERE { ?x <http://age> 42 }");
        let pat = Pattern::Group(q.pattern.clone());
        let triples = pat.triples();
        assert_eq!(
            triples[0].object,
            TermPattern::Term(Term::typed_lit("42", "http://www.w3.org/2001/XMLSchema#integer"))
        );
    }

    #[test]
    fn blank_node_as_variable() {
        let q = parse("SELECT ?x WHERE { ?x <http://p> _:v }");
        let pat = Pattern::Group(q.pattern.clone());
        let triples = pat.triples();
        assert_eq!(triples[0].object, TermPattern::Var("_:b_v".into()));
    }

    #[test]
    fn undeclared_prefix_is_error() {
        assert!(parse_sparql("SELECT * WHERE { ?x foaf:name ?n }").is_err());
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_sparql("SELECT ?x WHERE { ?x <http://p> ?y } garbage").is_err());
    }

    #[test]
    fn select_star_projects_all_variables() {
        let q = parse("SELECT * WHERE { ?b <http://p> ?a }");
        assert_eq!(q.projected_variables(), vec!["a", "b"]);
    }

    #[test]
    fn trailing_semicolon_allowed() {
        let q = parse("SELECT * WHERE { ?x <http://p> ?y ; }");
        assert_eq!(q.triple_count(), 1);
    }

    // ---- SPARQL 1.1 Update ----

    #[test]
    fn insert_data_parses_ground_triples() {
        let u = parse_update(
            "INSERT DATA { <http://s/1> <http://p/1> \"v\" . <http://s/2> <http://p/2> 42 }",
        )
        .unwrap();
        assert_eq!(u.ops.len(), 1);
        match &u.ops[0] {
            UpdateOp::InsertData(ts) => {
                assert_eq!(ts.len(), 2);
                assert_eq!(ts[0].subject, Term::iri("http://s/1"));
                assert_eq!(ts[1].object, Term::int_lit(42));
            }
            other => panic!("expected InsertData, got {other:?}"),
        }
        assert_eq!(u.data_triple_count(), 2);
    }

    #[test]
    fn delete_data_with_predicate_object_lists() {
        let u = parse_update(
            "DELETE DATA { <http://s/1> <http://p/1> \"a\", \"b\" ; <http://p/2> \"c\" }",
        )
        .unwrap();
        match &u.ops[0] {
            UpdateOp::DeleteData(ts) => assert_eq!(ts.len(), 3),
            other => panic!("expected DeleteData, got {other:?}"),
        }
    }

    #[test]
    fn prefixes_expand_in_data_blocks() {
        let u = parse_update(
            "PREFIX ex: <http://example.org/> INSERT DATA { ex:s ex:p ex:o }",
        )
        .unwrap();
        match &u.ops[0] {
            UpdateOp::InsertData(ts) => {
                assert_eq!(ts[0].subject, Term::iri("http://example.org/s"));
                assert_eq!(ts[0].predicate, Term::iri("http://example.org/p"));
                assert_eq!(ts[0].object, Term::iri("http://example.org/o"));
            }
            other => panic!("expected InsertData, got {other:?}"),
        }
    }

    #[test]
    fn delete_insert_where_carries_both_templates() {
        let u = parse_update(
            "DELETE { ?s <http://p/old> ?o } INSERT { ?s <http://p/new> ?o } \
             WHERE { ?s <http://p/old> ?o FILTER (?o > 3) }",
        )
        .unwrap();
        match &u.ops[0] {
            UpdateOp::DeleteInsert { delete, insert, pattern } => {
                assert_eq!(delete.len(), 1);
                assert_eq!(insert.len(), 1);
                assert_eq!(pattern.filters.len(), 1);
                assert_eq!(insert[0].predicate, TermPattern::Term(Term::iri("http://p/new")));
            }
            other => panic!("expected DeleteInsert, got {other:?}"),
        }
    }

    #[test]
    fn insert_where_without_delete() {
        let u = parse_update(
            "INSERT { ?s <http://p/2> ?o } WHERE { ?s <http://p/1> ?o }",
        )
        .unwrap();
        match &u.ops[0] {
            UpdateOp::DeleteInsert { delete, insert, .. } => {
                assert!(delete.is_empty());
                assert_eq!(insert.len(), 1);
            }
            other => panic!("expected DeleteInsert, got {other:?}"),
        }
    }

    #[test]
    fn delete_where_shorthand_reuses_pattern_as_template() {
        let u = parse_update("DELETE WHERE { ?s <http://p/1> ?o . ?o <http://p/2> ?x }")
            .unwrap();
        match &u.ops[0] {
            UpdateOp::DeleteInsert { delete, insert, pattern } => {
                assert_eq!(delete.len(), 2);
                assert!(insert.is_empty());
                assert_eq!(pattern.children.len(), 2);
            }
            other => panic!("expected DeleteInsert, got {other:?}"),
        }
    }

    #[test]
    fn delete_where_rejects_non_bgp_patterns() {
        assert!(parse_update("DELETE WHERE { ?s ?p ?o FILTER (?o > 1) }").is_err());
        assert!(parse_update("DELETE WHERE { OPTIONAL { ?s ?p ?o } }").is_err());
        assert!(
            parse_update("DELETE WHERE { { ?s <http://p/1> ?o } UNION { ?s <http://p/2> ?o } }")
                .is_err()
        );
    }

    #[test]
    fn semicolon_separates_operations() {
        let u = parse_update(
            "INSERT DATA { <http://s/1> <http://p/1> \"a\" } ; \
             DELETE DATA { <http://s/1> <http://p/1> \"a\" } ; \
             DELETE { ?s ?p ?o } WHERE { ?s ?p ?o } ;",
        )
        .unwrap();
        assert_eq!(u.ops.len(), 3);
    }

    #[test]
    fn prefix_redeclared_between_operations() {
        let u = parse_update(
            "PREFIX ex: <http://a/> INSERT DATA { ex:s ex:p ex:o } ; \
             PREFIX ex: <http://b/> INSERT DATA { ex:s ex:p ex:o }",
        )
        .unwrap();
        let subj = |op: &UpdateOp| match op {
            UpdateOp::InsertData(ts) => ts[0].subject.clone(),
            other => panic!("expected InsertData, got {other:?}"),
        };
        assert_eq!(subj(&u.ops[0]), Term::iri("http://a/s"));
        assert_eq!(subj(&u.ops[1]), Term::iri("http://b/s"));
    }

    #[test]
    fn data_blocks_reject_variables_and_blank_nodes() {
        assert!(parse_update("INSERT DATA { ?s <http://p/1> \"v\" }").is_err());
        assert!(parse_update("INSERT DATA { <http://s/1> <http://p/1> ?o }").is_err());
        assert!(parse_update("INSERT DATA { _:b <http://p/1> \"v\" }").is_err());
        assert!(parse_update("DELETE DATA { <http://s/1> <http://p/1> _:b }").is_err());
    }

    #[test]
    fn data_blocks_reject_malformed_positions() {
        // Literal subject.
        assert!(parse_update("INSERT DATA { \"lit\" <http://p/1> \"v\" }").is_err());
        // Literal predicate.
        assert!(parse_update("INSERT DATA { <http://s/1> \"lit\" \"v\" }").is_err());
    }

    #[test]
    fn templates_reject_blank_nodes() {
        assert!(
            parse_update("INSERT { _:b <http://p/1> ?o } WHERE { ?s <http://p/1> ?o }").is_err()
        );
        assert!(parse_update("DELETE WHERE { _:b <http://p/1> ?o }").is_err());
    }

    #[test]
    fn empty_or_malformed_updates_are_errors() {
        assert!(parse_update("").is_err());
        assert!(parse_update("PREFIX ex: <http://a/>").is_err());
        assert!(parse_update("SELECT * WHERE { ?s ?p ?o }").is_err());
        assert!(parse_update("INSERT DATA { <http://s/1> <http://p/1> \"v\" } garbage").is_err());
        assert!(parse_update("INSERT { ?s ?p ?o }").is_err()); // missing WHERE
    }
}
