//! Durability walkthrough: open a store bound to a directory, load triples,
//! crash without a clean shutdown, and reopen — everything committed before
//! the crash is recovered from the write-ahead log. Then checkpoint so the
//! next open is replay-free.
//!
//! Run with: `cargo run --example durability`

use db2rdf::{RdfStore, StoreConfig};
use rdf::{Term, Triple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = |s: &str, p: &str, o: Term| Triple::new(Term::iri(s), Term::iri(p), o);
    let triples = vec![
        t("Charles_Flint", "founder", Term::iri("IBM")),
        t("Larry_Page", "founder", Term::iri("Google")),
        t("Google", "industry", Term::lit("Software")),
        t("IBM", "industry", Term::lit("Software")),
    ];

    let dir = std::env::temp_dir().join(format!("db2rdf-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Open (creates the directory + an empty WAL), load, then "crash": drop
    // the store with no close() and no checkpoint(). The load committed as
    // one WAL transaction, so nothing is lost.
    {
        let mut store = RdfStore::open(&dir, StoreConfig::default())?;
        let report = store.load(&triples)?;
        println!("Loaded {} triples into {}", report.triples, dir.display());
        // drop == simulated crash
    }

    // Reopen: recovery replays the WAL into a fresh store.
    let mut store = RdfStore::open(&dir, StoreConfig::default())?;
    let founders = store.query("SELECT ?who ?co WHERE { ?who <founder> ?co }")?;
    println!("\nRecovered after crash:\n{}", founders.to_table());

    // Incremental inserts are each their own committed transaction.
    store.insert(&t("Android", "developer", Term::iri("Google")))?;
    drop(store); // crash again

    let mut store = RdfStore::open(&dir, StoreConfig::default())?;
    let devs = store.query("SELECT ?what WHERE { ?what <developer> <Google> }")?;
    println!("Insert survived a second crash:\n{}", devs.to_table());

    // Checkpoint folds the WAL into a snapshot; close() checkpoints too,
    // so a clean shutdown always reopens without replay.
    store.checkpoint()?;
    store.close()?;
    let store = RdfStore::open(&dir, StoreConfig::default())?;
    println!(
        "Reopened from snapshot: {} triples on disk",
        store.load_report().triples
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
