//! DBpedia-style knowledge-graph exploration: a store with thousands of
//! predicates (far more than any table could give one column each — the
//! case that motivates the paper's predicate-to-column coloring ⊕ hashing),
//! variable-predicate queries, and plan inspection.
//!
//! Run with: `cargo run --release --example knowledge_graph`

use datagen::dbpedia;
use db2rdf::{ColoringMode, EntityConfig, RdfStore, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 20k entities over 3000 predicates with power-law degrees.
    let triples = dbpedia::generate(20_000, 3_000, 13);
    let preds: std::collections::HashSet<String> =
        triples.iter().map(|t| t.predicate.encode()).collect();
    println!("{} triples over {} distinct predicates", triples.len(), preds.len());

    let cfg = StoreConfig {
        entity: EntityConfig { max_cols: 75, hash_fns: 2, coloring: ColoringMode::Full },
        ..Default::default()
    };
    let mut store = RdfStore::new(cfg);
    let report = store.load(&triples)?;
    println!(
        "Coloring squeezed {} predicates into {} DPH columns covering {:.1}% of triples \
         ({} spill rows); RPH uses {} columns ({:.1}% coverage).",
        report.predicates,
        report.dph_cols,
        100.0 * report.dph_coverage,
        report.dph_spill_rows,
        report.rph_cols,
        100.0 * report.rph_coverage,
    );
    println!(
        "DPH is {:.1}% NULLs yet value compression keeps storage at {} KiB total.",
        100.0 * report.dph_null_fraction,
        report.storage_bytes / 1024
    );

    // Describe an entity: variable predicate → UNNEST over all columns.
    let ns = dbpedia::NS;
    let describe = format!("SELECT ?p ?o WHERE {{ <{ns}r/0> ?p ?o }}");
    let sols = store.query(&describe)?;
    println!("\nEntity r/0 has {} facts; sample:", sols.len());
    for i in 0..sols.len().min(5) {
        println!("  {} → {}", sols.get(i, "p").unwrap(), sols.get(i, "o").unwrap());
    }

    // Who points at the most-linked entity?
    let inlinks = format!("SELECT ?s ?p WHERE {{ ?s ?p <{ns}r/0> }}");
    println!("In-links to r/0: {}", store.query(&inlinks)?.len());

    // A typed star with OPTIONAL, with its plan.
    let q = format!(
        "SELECT ?s ?l ?x WHERE {{ \
         ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <{ns}ontology/Type0> . \
         ?s <{ns}label> ?l . OPTIONAL {{ ?s <{ns}p/0> ?x }} }} LIMIT 5"
    );
    let e = store.explain(&q)?;
    println!("\nPlan for a typed star (flow): {:?}", e.flow);
    let sols = store.query(&q)?;
    println!("{}", sols.to_table());
    Ok(())
}
