//! Compare the three relational RDF layouts of the paper's §2 on the same
//! data and star query: entity-oriented (DB2RDF), triple-store, and
//! predicate-oriented vertical partitioning — a miniature of Fig. 3.
//!
//! Run with: `cargo run --release --example layout_comparison`

use std::time::Instant;

use datagen::micro;
use db2rdf::{layout_name, Layout, RdfStore, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let triples = micro::generate(20_000, 7);
    println!("Micro-benchmark dataset: {} triples\n", triples.len());

    let queries = micro::queries();
    let mut stores = Vec::new();
    for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
        let mut store = RdfStore::new(StoreConfig::with_layout(layout));
        let t0 = Instant::now();
        store.load(&triples)?;
        println!("{:<32} loaded in {:?}", layout_name(layout), t0.elapsed());
        stores.push((layout, store));
    }

    println!("\n{:<6} {:>10} {:>14} {:>14} {:>14}", "query", "results", "entity", "triple", "vertical");
    for q in &queries {
        let mut cells = Vec::new();
        let mut results = 0;
        for (_, store) in &stores {
            // Warm up once, then measure the median of 3 runs.
            let _ = store.query(&q.sparql)?;
            let mut times = Vec::new();
            for _ in 0..3 {
                let t0 = Instant::now();
                let sols = store.query(&q.sparql)?;
                times.push(t0.elapsed());
                results = sols.len();
            }
            times.sort();
            cells.push(format!("{:>12.2?}", times[1]));
        }
        println!("{:<6} {:>10} {}", q.name, results, cells.join(" "));
    }

    println!(
        "\nExpected shape (paper Fig. 3): the entity layout answers every star\n\
         with a single DPH access and stays flat; the triple store pays one\n\
         self-join per predicate; the vertical store sits in between, winning\n\
         only when each predicate in the star is individually selective (Q7-Q10)."
    );
    Ok(())
}
