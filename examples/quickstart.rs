//! Quickstart: build an entity-oriented RDF store, load a few triples, run
//! SPARQL, and look under the hood at the generated plan and SQL.
//!
//! Run with: `cargo run --example quickstart`

use db2rdf::RdfStore;
use rdf::{Term, Triple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 1(a) DBpedia sample.
    let t = |s: &str, p: &str, o: Term| Triple::new(Term::iri(s), Term::iri(p), o);
    let triples = vec![
        t("Charles_Flint", "born", Term::lit("1850")),
        t("Charles_Flint", "died", Term::lit("1934")),
        t("Charles_Flint", "founder", Term::iri("IBM")),
        t("Larry_Page", "born", Term::lit("1973")),
        t("Larry_Page", "founder", Term::iri("Google")),
        t("Larry_Page", "board", Term::iri("Google")),
        t("Larry_Page", "home", Term::lit("Palo Alto")),
        t("Android", "developer", Term::iri("Google")),
        t("Android", "version", Term::lit("4.1")),
        t("Google", "industry", Term::lit("Software")),
        t("Google", "industry", Term::lit("Internet")),
        t("Google", "employees", Term::int_lit(54604)),
        t("IBM", "industry", Term::lit("Software")),
        t("IBM", "employees", Term::int_lit(433362)),
    ];

    let mut store = RdfStore::entity();
    let report = store.load(&triples)?;
    println!(
        "Loaded {} triples into DPH ({} rows, {} predicate columns) and RPH ({} rows, {} columns)",
        report.triples, report.dph_rows, report.dph_cols, report.rph_rows, report.rph_cols
    );

    // Star query: everything about companies in the Software industry.
    let query = "SELECT ?company ?emp WHERE {
        ?company <industry> 'Software' .
        ?company <employees> ?emp .
    } ORDER BY DESC(?emp)";

    let explanation = store.explain(query)?;
    println!("\nOptimal flow (triple, access method): {:?}", explanation.flow);
    println!("\nGenerated SQL:\n{}", explanation.sql);

    let solutions = store.query(query)?;
    println!("\nResults:\n{}", solutions.to_table());

    // Incremental insert — no schema change needed for a brand-new predicate.
    store.insert(&t("Google", "motto", Term::lit("Don't be evil")))?;
    let motto = store.query("SELECT ?m WHERE { <Google> <motto> ?m }")?;
    println!("After insert: {}", motto.to_table());

    // ASK and FILTER.
    let big = store.query(
        "ASK { ?c <employees> ?e . FILTER(?e > 100000) }",
    )?;
    println!("Any company with more than 100k employees? {:?}", big.boolean);
    Ok(())
}
