//! Tool-integration scenario (the paper's PRBench): bug reports, tests,
//! change sets and builds from different tools, linked through RDF and
//! queried across tool boundaries — the workload class where the hybrid
//! optimizer shines (paper Figs. 17/18).
//!
//! Run with: `cargo run --release --example tool_integration`

use std::time::Instant;

use datagen::prbench;
use db2rdf::{OptimizerMode, RdfStore, StoreConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let triples = prbench::generate(2_000, 42);
    println!("Generated {} tool-integration triples", triples.len());

    let mut store = RdfStore::entity();
    let report = store.load(&triples)?;
    println!(
        "DPH: {} rows / {} cols ({} spill rows); coloring covered {:.1}% of triples",
        report.dph_rows,
        report.dph_cols,
        report.dph_spill_rows,
        100.0 * report.dph_coverage
    );

    // Cross-tool traceability: failing builds → change sets → critical bugs
    // → the P1 requirements they endanger.
    let traceability = prbench::queries()
        .into_iter()
        .find(|q| q.name == "PQ10")
        .unwrap();
    let t0 = Instant::now();
    let sols = store.query(&traceability.sparql)?;
    println!(
        "\nPQ10 (cross-tool traceability): {} results in {:?}",
        sols.len(),
        t0.elapsed()
    );
    for i in 0..sols.len().min(3) {
        println!(
            "  requirement={} bug={} change={} build={}",
            sols.get(i, "req").unwrap(),
            sols.get(i, "bug").unwrap(),
            sols.get(i, "chg").unwrap(),
            sols.get(i, "bld").unwrap()
        );
    }

    // The same query under the naive textual-order optimizer (§3.3).
    let naive_cfg = StoreConfig { optimizer: OptimizerMode::Naive, ..Default::default() };
    let mut naive_store = RdfStore::new(naive_cfg);
    naive_store.load(&triples)?;
    let t0 = Instant::now();
    let naive_sols = naive_store.query(&traceability.sparql)?;
    println!(
        "Same query, textual-order flow: {} results in {:?}",
        naive_sols.len(),
        t0.elapsed()
    );

    // A 100-branch UNION (the paper mentions one of PRBench's queries is a
    // SPARQL union of 100 conjunctive queries).
    let giant = prbench::queries().into_iter().find(|q| q.name == "PQ26").unwrap();
    let t0 = Instant::now();
    let sols = store.query(&giant.sparql)?;
    println!("\nPQ26 (UNION of 100 conjunctions): {} results in {:?}", sols.len(), t0.elapsed());

    Ok(())
}
