#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md), pinned to --offline so a regression
# in the workspace's no-network guarantee fails loudly instead of silently
# reaching for crates.io. Run from the repo root:
#
#   scripts/verify.sh            # tier-1: release build + root-package tests
#   scripts/verify.sh --all      # additionally test every workspace crate
#   scripts/verify.sh --clippy   # additionally lint (warnings are errors)
#   scripts/verify.sh --server   # additionally boot the SPARQL endpoint on
#                                # an ephemeral port and run its smoke suite
#                                # (curl-equivalent queries + /healthz check)
#   scripts/verify.sh --plan-cache
#                                # additionally run the plan_cache bench in
#                                # its PLAN_CACHE_SMOKE=1 profile (asserts
#                                # the >=2x warm-plan speedup bar)
#   scripts/verify.sh --exec-scaling
#                                # additionally run the exec_scaling bench in
#                                # its EXEC_SCALING_SMOKE=1 profile; on a
#                                # >=4-core host this FAILS if the minimum
#                                # 4-thread speedup is < 1.5x (on fewer
#                                # cores the gate reports itself skipped)
#   scripts/verify.sh --fuzz     # additionally run the adversarial harness
#                                # in its FUZZ_SMOKE=1 profile: ~200 seeded
#                                # grammar-fuzzed queries through the
#                                # differential oracle plus a bounded
#                                # crash-point sweep (truncations, write and
#                                # read faults) — fixed seeds, <2 min
#   scripts/verify.sh --bulk-load
#                                # additionally run the bulk_load bench in
#                                # its BULK_LOAD_SMOKE=1 profile: ~100k LUBM
#                                # triples through the streaming parallel
#                                # loader under a fixed peak-RSS ceiling
#   scripts/verify.sh --update   # additionally run the update_throughput
#                                # bench in its UPDATE_SMOKE=1 profile:
#                                # mixed read/write over a durable store
#                                # through the group-commit path, asserting
#                                # every update acks and the batch histogram
#                                # balances
#   scripts/verify.sh --analytics
#                                # additionally run the analytics bench in
#                                # its ANALYTICS_SMOKE=1 profile: the AQ1-8
#                                # aggregate/BIND/VALUES/subquery workload
#                                # over SP²Bench data, every answer checked
#                                # against the naive reference on all three
#                                # layouts before timing
#
# Flags combine: `scripts/verify.sh --all --clippy --server --plan-cache
# --exec-scaling --fuzz --bulk-load --update --analytics` is what CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

run_all=false
run_clippy=false
run_server=false
run_plan_cache=false
run_exec_scaling=false
run_fuzz=false
run_bulk_load=false
run_update=false
run_analytics=false
for arg in "$@"; do
    case "$arg" in
        --all) run_all=true ;;
        --clippy) run_clippy=true ;;
        --server) run_server=true ;;
        --plan-cache) run_plan_cache=true ;;
        --exec-scaling) run_exec_scaling=true ;;
        --fuzz) run_fuzz=true ;;
        --bulk-load) run_bulk_load=true ;;
        --update) run_update=true ;;
        --analytics) run_analytics=true ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

if $run_all; then
    echo "== cargo test -q --workspace --offline"
    cargo test -q --workspace --offline
fi

if $run_clippy; then
    echo "== cargo clippy --workspace --all-targets --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
fi

if $run_server; then
    echo "== db2rdf-serve --smoke (ephemeral port, JSON/TSV/400/healthz/stats)"
    cargo run --release --offline -p server --bin db2rdf-serve -- --smoke
fi

if $run_plan_cache; then
    echo "== plan_cache bench smoke (cold vs warm planning, >=2x bar)"
    PLAN_CACHE_SMOKE=1 cargo run --release --offline -p bench --bin plan_cache
fi

if $run_exec_scaling; then
    echo "== exec_scaling bench smoke (thread-count determinism; >=1.5x min"
    echo "   4-thread speedup when the host has >=4 cores)"
    EXEC_SCALING_SMOKE=1 cargo run --release --offline -p bench --bin exec_scaling
fi

if $run_fuzz; then
    echo "== fuzz_differential smoke (seeded differential oracle + crash sweep)"
    FUZZ_SMOKE=1 cargo run --release --offline -p bench --bin fuzz_differential
fi

if $run_bulk_load; then
    echo "== bulk_load bench smoke (~100k streamed LUBM triples, RSS ceiling)"
    BULK_LOAD_SMOKE=1 cargo run --release --offline -p bench --bin bulk_load
fi

if $run_update; then
    echo "== update_throughput bench smoke (group-committed mixed read/write)"
    UPDATE_SMOKE=1 cargo run --release --offline -p bench --bin update_throughput
fi

if $run_analytics; then
    echo "== analytics bench smoke (aggregates/BIND/VALUES/subqueries vs naive)"
    ANALYTICS_SMOKE=1 cargo run --release --offline -p bench --bin analytics
fi

echo "verify: OK"
