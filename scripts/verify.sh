#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md), pinned to --offline so a regression
# in the workspace's no-network guarantee fails loudly instead of silently
# reaching for crates.io. Run from the repo root:
#
#   scripts/verify.sh            # tier-1: release build + root-package tests
#   scripts/verify.sh --all      # additionally test every workspace crate
#   scripts/verify.sh --clippy   # additionally lint (warnings are errors)
#   scripts/verify.sh --server   # additionally boot the SPARQL endpoint on
#                                # an ephemeral port and run its smoke suite
#                                # (curl-equivalent queries + /healthz check)
#
# Flags combine: `scripts/verify.sh --all --clippy --server` is what CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

run_all=false
run_clippy=false
run_server=false
for arg in "$@"; do
    case "$arg" in
        --all) run_all=true ;;
        --clippy) run_clippy=true ;;
        --server) run_server=true ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

if $run_all; then
    echo "== cargo test -q --workspace --offline"
    cargo test -q --workspace --offline
fi

if $run_clippy; then
    echo "== cargo clippy --workspace --all-targets --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
fi

if $run_server; then
    echo "== db2rdf-serve --smoke (ephemeral port, JSON/TSV/400/healthz/stats)"
    cargo run --release --offline -p server --bin db2rdf-serve -- --smoke
fi

echo "verify: OK"
