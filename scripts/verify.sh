#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md), pinned to --offline so a regression
# in the workspace's no-network guarantee fails loudly instead of silently
# reaching for crates.io. Run from the repo root:
#
#   scripts/verify.sh            # tier-1: release build + root-package tests
#   scripts/verify.sh --all      # additionally test every workspace crate
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline"
cargo build --release --offline

echo "== cargo test -q --offline"
cargo test -q --offline

if [[ "${1:-}" == "--all" ]]; then
    echo "== cargo test -q --workspace --offline"
    cargo test -q --workspace --offline
fi

echo "verify: OK"
