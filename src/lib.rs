//! Facade crate for the DB2RDF reproduction workspace.
//!
//! Re-exports the member crates; see `crates/core` (`db2rdf`) for the store
//! API, `crates/datagen` for the benchmark datasets, and `crates/bench` for
//! the experiment harness. The `examples/` directory of this package holds
//! the runnable end-to-end examples; `tests/` holds cross-crate integration
//! and property tests.

pub use datagen;
pub use db2rdf;
pub use rdf;
pub use relstore;
pub use server;
pub use sparql;
