//! End-to-end analytic acceptance test: an SP²Bench-style aggregate query
//! (GROUP BY + COUNT + HAVING + ORDER BY) travels the whole stack — HTTP
//! request parsing, SPARQL parsing, SQL translation, relational execution,
//! W3C JSON serialization — and the response body must be *byte-identical*
//! to the naive reference evaluator's serialization of the same query, on
//! every one of the three relational layouts.
//!
//! Byte-identity (not just multiset equality) is meaningful here because
//! the ORDER BY key is the group key, which is unique per row: the total
//! order is fully pinned, so any drift in ordering, aggregate typing
//! (COUNT must stay xsd:integer) or JSON rendering fails the test.

use db2rdf::{naive, Layout, RdfStore, SharedStore, StoreConfig};
use server::client::Client;
use server::{Server, ServerConfig};
use sparql::parse_sparql;

/// Documents per year, restricted to prolific years — the SP²Bench "count
/// publications per venue/year" analytic shape.
const AGG_QUERY: &str = "SELECT ?a (COUNT(?d) AS ?n) \
     WHERE { ?d <http://sp2b.bench/creator> ?a } \
     GROUP BY ?a HAVING(COUNT(?d) > 3) ORDER BY ?a";

#[test]
fn aggregate_query_over_http_matches_naive_on_every_layout() {
    let triples = datagen::sp2b::generate(500, 42);
    let parsed = parse_sparql(AGG_QUERY).expect("acceptance query parses");
    let reference = naive::evaluate(&triples, &parsed);
    assert!(
        reference.len() >= 3,
        "degenerate acceptance dataset: only {} groups survive HAVING",
        reference.len()
    );
    let expected_json = reference.to_json();

    for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
        let mut store = RdfStore::new(StoreConfig::with_layout(layout));
        store.load(&triples).unwrap_or_else(|e| panic!("{layout:?}: load: {e}"));
        let server =
            Server::start(SharedStore::new(store), "127.0.0.1:0", ServerConfig::default())
                .expect("bind ephemeral port");
        let mut c = Client::connect(server.local_addr()).expect("connect");
        let r = c.sparql_get(AGG_QUERY, None).expect("request");
        assert_eq!(r.status, 200, "{layout:?}: {}", r.text());
        assert_eq!(
            r.header("content-type"),
            Some("application/sparql-results+json"),
            "{layout:?}"
        );
        assert_eq!(
            r.text(),
            expected_json,
            "{layout:?}: HTTP response body is not byte-identical to the naive reference"
        );
        server.shutdown();
    }
}
