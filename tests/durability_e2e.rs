//! End-to-end durability: a durable store that crashes and reopens between
//! every few mutations must answer the whole query suite exactly like an
//! in-memory store that never restarted.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use db2rdf::{RdfStore, Solutions, StoreConfig};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "db2rdf-e2e-{}-{}-{name}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn canon(s: &Solutions) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = s
        .rows
        .iter()
        .map(|r| r.iter().map(|t| t.as_ref().map(|t| t.encode()).unwrap_or_default()).collect())
        .collect();
    rows.sort();
    rows
}

fn queries() -> Vec<String> {
    datagen::micro::queries().into_iter().map(|q| q.sparql).collect()
}

#[test]
fn durable_store_with_restarts_matches_in_memory_store() {
    let triples = datagen::micro::generate(200, 7);
    let (bulk, tail) = triples.split_at(triples.len() - 20);

    let mut mem = RdfStore::new(StoreConfig::default());
    mem.load(bulk).unwrap();

    let dir = fresh_dir("restarts");
    {
        let mut dur = RdfStore::open(&dir, StoreConfig::default()).unwrap();
        dur.load(bulk).unwrap();
        drop(dur); // crash #1: straight after the bulk load
    }

    // Insert the tail in chunks, crashing (dropping without close) or
    // checkpointing between chunks; mirror every insert on the in-memory
    // store.
    for (chunk_no, chunk) in tail.chunks(5).enumerate() {
        let mut dur = RdfStore::open(&dir, StoreConfig::default()).unwrap();
        for t in chunk {
            let a = mem.insert(t).unwrap();
            let b = dur.insert(t).unwrap();
            assert_eq!(a, b, "insert outcome diverged for {t:?}");
        }
        if chunk_no % 2 == 0 {
            drop(dur); // crash
        } else {
            dur.checkpoint().unwrap();
            dur.close().unwrap(); // clean shutdown
        }
    }

    let dur = RdfStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(dur.load_report().triples, mem.load_report().triples);
    for q in queries() {
        let a = mem.query(&q);
        let b = dur.query(&q);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(canon(&x), canon(&y), "query diverged: {q}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("one store failed where the other succeeded for {q}: {} vs {}",
                a.is_ok(), b.is_ok()),
        }
    }
}
