//! Replay every minimized case in `tests/corpus/` through the full
//! differential oracle: reference-equivalence against the naive evaluator,
//! layout-agreement across all three layouts, cache-transparency, and
//! thread-invariance. The corpus holds handcrafted recreations of bug
//! classes the fuzzer found plus any shrunk repro `fuzz_differential`
//! writes on a divergence — a case that starts failing here means a fixed
//! bug came back.
//!
//! `.ucase` files are SPARQL 1.1 Update cases, replayed through
//! `oracle::check_update_case`: the real applier must match the naive
//! set-semantic reference on every layout, in both effect counts and final
//! store contents.

use std::path::PathBuf;

use db2rdf::oracle;

fn corpus_paths(ext: &str) -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p: &PathBuf| p.extension().is_some_and(|x| x == ext))
        .collect();
    paths.sort();
    paths
}

#[test]
fn corpus_cases_pass_every_invariant() {
    let paths = corpus_paths("case");
    let mut failures = Vec::new();
    for path in &paths {
        let (triples, query) =
            oracle::read_case(path).unwrap_or_else(|e| panic!("unreadable case: {e}"));
        if let Err(d) = oracle::check_case(&triples, &query) {
            failures.push(format!("{}: {d}", path.display()));
        }
    }
    assert!(failures.is_empty(), "regressed corpus cases:\n{}", failures.join("\n"));
    assert!(paths.len() >= 3, "corpus unexpectedly small: {} cases", paths.len());
}

#[test]
fn update_corpus_cases_pass() {
    let paths = corpus_paths("ucase");
    let mut failures = Vec::new();
    for path in &paths {
        let (triples, update) = oracle::read_update_case(path)
            .unwrap_or_else(|e| panic!("unreadable update case: {e}"));
        if let Err(d) = oracle::check_update_case(&triples, &update) {
            failures.push(format!("{}: {d}", path.display()));
        }
    }
    assert!(failures.is_empty(), "regressed update corpus cases:\n{}", failures.join("\n"));
    assert!(paths.len() >= 3, "update corpus unexpectedly small: {} cases", paths.len());
}

#[test]
fn generated_update_cases_smoke() {
    // A quick always-on slice of the update fuzzer (the full sweep runs in
    // `bench --bin fuzz_differential`): every generated request must parse
    // and pass the differential check.
    for seed in 0..25u64 {
        let case = datagen::queryfuzz::gen_update_case(seed);
        oracle::check_update_case(&case.triples, &case.update)
            .unwrap_or_else(|d| panic!("seed {seed} [{}]: {d}", case.update));
    }
}
