//! Replay every minimized case in `tests/corpus/` through the full
//! differential oracle: reference-equivalence against the naive evaluator,
//! layout-agreement across all three layouts, cache-transparency, and
//! thread-invariance. The corpus holds handcrafted recreations of bug
//! classes the fuzzer found plus any shrunk repro `fuzz_differential`
//! writes on a divergence — a case that starts failing here means a fixed
//! bug came back.

use std::path::PathBuf;

use db2rdf::oracle;

#[test]
fn corpus_cases_pass_every_invariant() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();

    let mut failures = Vec::new();
    for path in &paths {
        let (triples, query) =
            oracle::read_case(path).unwrap_or_else(|e| panic!("unreadable case: {e}"));
        if let Err(d) = oracle::check_case(&triples, &query) {
            failures.push(format!("{}: {d}", path.display()));
        }
    }
    assert!(failures.is_empty(), "regressed corpus cases:\n{}", failures.join("\n"));
    assert!(paths.len() >= 3, "corpus unexpectedly small: {} cases", paths.len());
}
