//! Incremental-insert equivalence: a store built triple by triple answers
//! every query exactly like a bulk-loaded one, for all three layouts —
//! covering lid promotion, spill creation and hash-tail column assignment
//! on the incremental path.

use db2rdf::{ColoringMode, Layout, RdfStore, StoreConfig};
use rdf::{parse_ntriples, Term, Triple};

fn canon(s: &db2rdf::Solutions) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = s
        .rows
        .iter()
        .map(|r| r.iter().map(|t| t.as_ref().map(|t| t.encode()).unwrap_or_default()).collect())
        .collect();
    rows.sort();
    rows
}

fn queries() -> Vec<String> {
    let mut qs: Vec<String> =
        datagen::micro::queries().into_iter().map(|q| q.sparql).collect();
    qs.push(datagen::micro::fig14_query().sparql);
    qs
}

#[test]
fn insert_only_store_matches_bulk_loaded_store() {
    let triples = datagen::micro::generate(150, 21);
    for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
        let mut bulk = RdfStore::new(StoreConfig::with_layout(layout));
        bulk.load(&triples).unwrap();

        let mut incremental = RdfStore::new(StoreConfig::with_layout(layout));
        // Seed with the first triple (implicit load), insert the rest.
        for t in &triples {
            incremental.insert(t).unwrap();
        }
        assert_eq!(
            incremental.load_report().triples,
            triples.len() as u64,
            "{layout:?} triple count"
        );
        for q in queries() {
            let a = bulk.query(&q).unwrap();
            let b = incremental.query(&q).unwrap();
            assert_eq!(canon(&a), canon(&b), "{layout:?} disagrees on {q}");
        }
    }
}

#[test]
fn incremental_spills_with_tiny_columns_stay_correct() {
    // 2 columns, 1 hash function: inserts force spills; queries must still
    // see everything (the spill rows are probed through the entry index).
    let mut cfg = StoreConfig::with_layout(Layout::Entity);
    cfg.entity.max_cols = 2;
    cfg.entity.hash_fns = 1;
    cfg.entity.coloring = ColoringMode::HashOnly;
    let mut store = RdfStore::new(cfg);
    for p in 0..8 {
        store
            .insert(&Triple::new(
                Term::iri("e:s"),
                Term::iri(format!("e:p{p}")),
                Term::lit(format!("v{p}")),
            ))
            .unwrap();
    }
    assert!(store.load_report().dph_spill_rows > 0, "expected spills");
    let sols = store.query("SELECT ?p ?o WHERE { <e:s> ?p ?o }").unwrap();
    assert_eq!(sols.len(), 8);
    // A two-predicate star across spill rows (not mergeable) still works.
    let sols = store
        .query("SELECT ?a ?b WHERE { <e:s> <e:p0> ?a . <e:s> <e:p7> ?b }")
        .unwrap();
    assert_eq!(sols.len(), 1);
}

#[test]
fn delete_reverses_insert() {
    let mut store = RdfStore::entity();
    let t = |s: &str, p: &str, o: &str| {
        Triple::new(Term::iri(s), Term::iri(p), Term::lit(o))
    };
    store
        .load(&[
            t("s1", "p", "a"),
            t("s1", "p", "b"),
            t("s1", "p", "c"),
            t("s1", "q", "x"),
            t("s2", "p", "a"),
        ])
        .unwrap();
    let count = |st: &RdfStore| st.query("SELECT ?o WHERE { <s1> <p> ?o }").unwrap().len();
    assert_eq!(count(&store), 3);

    // Remove one value from the multi-valued list.
    assert!(store.delete(&t("s1", "p", "b")).unwrap());
    assert_eq!(count(&store), 2);
    // Deleting again is a no-op.
    assert!(!store.delete(&t("s1", "p", "b")).unwrap());

    // Shrink to one value (demotes the lid to a direct value)...
    assert!(store.delete(&t("s1", "p", "c")).unwrap());
    assert_eq!(count(&store), 1);
    let sols = store.query("SELECT ?o WHERE { <s1> <p> ?o }").unwrap();
    assert_eq!(sols.get(0, "o"), Some(&Term::lit("a")));

    // ...and delete the last one.
    assert!(store.delete(&t("s1", "p", "a")).unwrap());
    assert_eq!(count(&store), 0);
    // Single-valued predicate delete.
    assert!(store.delete(&t("s1", "q", "x")).unwrap());
    assert!(store.query("SELECT ?o WHERE { <s1> ?p ?o }").unwrap().is_empty());
    // Other subjects untouched; reverse side consistent.
    let sols = store.query("SELECT ?s WHERE { ?s <p> 'a' }").unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols.get(0, "s"), Some(&Term::iri("s2")));
    assert_eq!(store.load_report().triples, 1);

    // Insert after delete reuses the freed cell.
    assert!(store.insert(&t("s1", "p", "fresh")).unwrap());
    assert_eq!(count(&store), 1);
}

#[test]
fn ntriples_loading_roundtrip() {
    let doc = r#"
        <http://e/s1> <http://e/p> "hello world" .
        <http://e/s1> <http://e/p> "second value" .
        <http://e/s2> <http://e/p> <http://e/s1> <http://e/graph1> .
        _:b1 <http://e/q> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
    "#;
    let mut store = RdfStore::entity();
    let report = store.load_ntriples(doc).unwrap();
    assert_eq!(report.triples, 4);
    let sols = store.query("SELECT ?v WHERE { <http://e/s1> <http://e/p> ?v }").unwrap();
    assert_eq!(sols.len(), 2);
    let sols = store
        .query("SELECT ?s WHERE { ?s <http://e/q> ?v . FILTER(?v = 42) }")
        .unwrap();
    assert_eq!(sols.len(), 1);
    // Round-trip through the rdf crate's writer.
    let quads = parse_ntriples(doc).unwrap();
    let rewritten = rdf::write_ntriples(&quads);
    assert_eq!(parse_ntriples(&rewritten).unwrap(), quads);
}
