//! Property test: for random small graphs and random (well-designed)
//! queries, the entity-oriented, triple-store and vertical layouts — each
//! with its own SPARQL→SQL translation over the relational engine — all
//! produce exactly the multiset of solutions computed by the independent
//! naive in-memory evaluator.

use db2rdf::{naive, Layout, RdfStore, StoreConfig};
use proptest::prelude::*;
use rdf::{Term, Triple};
use sparql::parse_sparql;

const PREDICATES: usize = 6;
const SUBJECTS: usize = 9;

fn arb_triple() -> impl Strategy<Value = Triple> {
    (
        0..SUBJECTS,
        0..PREDICATES,
        prop_oneof![
            (0..SUBJECTS).prop_map(|i| Term::iri(format!("e:s{i}"))),
            (0..5i64).prop_map(Term::int_lit),
            (0..4u8).prop_map(|i| Term::lit(format!("lit{i}"))),
        ],
    )
        .prop_map(|(s, p, o)| {
            Triple::new(Term::iri(format!("e:s{s}")), Term::iri(format!("e:p{p}")), o)
        })
}

fn arb_graph() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(arb_triple(), 1..40).prop_map(|mut ts| {
        ts.sort();
        ts.dedup();
        ts
    })
}

/// A random query from a pool of well-designed shapes over the same
/// vocabulary: stars, chains, unions, optionals, filters, var predicates.
fn arb_query() -> impl Strategy<Value = String> {
    let pred = |i: usize| format!("<e:p{i}>");
    (0..PREDICATES, 0..PREDICATES, 0..PREDICATES, 0..SUBJECTS, 0..8u8).prop_map(
        move |(p1, p2, p3, s, shape)| match shape {
            0 => format!("SELECT ?x ?y WHERE {{ ?x {} ?y }}", pred(p1)),
            1 => format!(
                "SELECT ?x ?a ?b WHERE {{ ?x {} ?a . ?x {} ?b }}",
                pred(p1),
                pred(p2)
            ),
            2 => format!(
                "SELECT ?x ?y ?z WHERE {{ ?x {} ?y . ?y {} ?z }}",
                pred(p1),
                pred(p2)
            ),
            3 => format!(
                "SELECT ?x ?y WHERE {{ {{ ?x {} ?y }} UNION {{ ?x {} ?y }} }}",
                pred(p1),
                pred(p2)
            ),
            4 => format!(
                "SELECT ?x ?a ?b WHERE {{ ?x {} ?a . OPTIONAL {{ ?x {} ?b }} }}",
                pred(p1),
                pred(p2)
            ),
            5 => format!(
                "SELECT ?x ?v WHERE {{ ?x {} ?v . FILTER(?v > 1) }}",
                pred(p1)
            ),
            6 => format!("SELECT ?p ?o WHERE {{ <e:s{s}> ?p ?o }}"),
            _ => format!(
                "SELECT ?x ?a ?c WHERE {{ ?x {} ?a . ?x {} <e:s{s}> . \
                 OPTIONAL {{ ?x {} ?c }} }}",
                pred(p1),
                pred(p2),
                pred(p3)
            ),
        },
    )
}

fn canon(s: &db2rdf::Solutions) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = s
        .rows
        .iter()
        .map(|r| r.iter().map(|t| t.as_ref().map(|t| t.encode()).unwrap_or_default()).collect())
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn all_layouts_match_reference(graph in arb_graph(), query_text in arb_query()) {
        let query = parse_sparql(&query_text).unwrap();
        let expected = naive::evaluate(&graph, &query);
        let expected_rows = canon(&expected);
        for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
            let mut store = RdfStore::new(StoreConfig::with_layout(layout));
            store.load(&graph).unwrap();
            let got = store.query(&query_text).unwrap_or_else(|e| {
                panic!("{layout:?} failed on {query_text}: {e}")
            });
            prop_assert_eq!(
                canon(&got),
                expected_rows.clone(),
                "layout {:?} disagrees with reference on {} over {} triples",
                layout, query_text, graph.len()
            );
        }
    }

    #[test]
    fn entity_layout_with_tiny_columns_still_correct(graph in arb_graph()) {
        // Force spills: only 2 columns, 1 hash function.
        let mut cfg = StoreConfig::with_layout(Layout::Entity);
        cfg.entity.max_cols = 2;
        cfg.entity.hash_fns = 1;
        cfg.entity.coloring = db2rdf::ColoringMode::HashOnly;
        let mut store = RdfStore::new(cfg);
        store.load(&graph).unwrap();
        let query_text = "SELECT ?x ?a ?b WHERE { ?x <e:p0> ?a . ?x <e:p1> ?b }";
        let query = parse_sparql(query_text).unwrap();
        let expected = naive::evaluate(&graph, &query);
        let got = store.query(query_text).unwrap();
        prop_assert_eq!(canon(&got), canon(&expected));
    }
}
