//! Property test: for random small graphs and random (well-designed)
//! queries, the entity-oriented, triple-store and vertical layouts — each
//! with its own SPARQL→SQL translation over the relational engine — all
//! produce exactly the multiset of solutions computed by the independent
//! naive in-memory evaluator.
//!
//! Written as deterministic seeded-loop property tests (a fixed-seed
//! SplitMix64 drives the generators) so the suite needs no external
//! dependency and every run exercises exactly the same cases.

use datagen::rng::SplitMix64;
use db2rdf::{naive, Layout, RdfStore, StoreConfig};
use rdf::{Term, Triple};
use sparql::parse_sparql;

const PREDICATES: usize = 6;
const SUBJECTS: usize = 9;

fn arb_triple(rng: &mut SplitMix64) -> Triple {
    let s = rng.gen_range(0..SUBJECTS);
    let p = rng.gen_range(0..PREDICATES);
    let o = match rng.gen_range(0..3u32) {
        0 => Term::iri(format!("e:s{}", rng.gen_range(0..SUBJECTS))),
        1 => Term::int_lit(rng.gen_range(0..5i64)),
        _ => Term::lit(format!("lit{}", rng.gen_range(0..4u8))),
    };
    Triple::new(Term::iri(format!("e:s{s}")), Term::iri(format!("e:p{p}")), o)
}

fn arb_graph(rng: &mut SplitMix64) -> Vec<Triple> {
    let n = rng.gen_range(1..40usize);
    let mut ts: Vec<Triple> = (0..n).map(|_| arb_triple(rng)).collect();
    ts.sort();
    ts.dedup();
    ts
}

/// A random query from a pool of well-designed shapes over the same
/// vocabulary: stars, chains, unions, optionals, filters, var predicates.
fn arb_query(rng: &mut SplitMix64) -> String {
    let pred = |i: usize| format!("<e:p{i}>");
    let p1 = rng.gen_range(0..PREDICATES);
    let p2 = rng.gen_range(0..PREDICATES);
    let p3 = rng.gen_range(0..PREDICATES);
    let s = rng.gen_range(0..SUBJECTS);
    match rng.gen_range(0..8u8) {
        0 => format!("SELECT ?x ?y WHERE {{ ?x {} ?y }}", pred(p1)),
        1 => format!(
            "SELECT ?x ?a ?b WHERE {{ ?x {} ?a . ?x {} ?b }}",
            pred(p1),
            pred(p2)
        ),
        2 => format!(
            "SELECT ?x ?y ?z WHERE {{ ?x {} ?y . ?y {} ?z }}",
            pred(p1),
            pred(p2)
        ),
        3 => format!(
            "SELECT ?x ?y WHERE {{ {{ ?x {} ?y }} UNION {{ ?x {} ?y }} }}",
            pred(p1),
            pred(p2)
        ),
        4 => format!(
            "SELECT ?x ?a ?b WHERE {{ ?x {} ?a . OPTIONAL {{ ?x {} ?b }} }}",
            pred(p1),
            pred(p2)
        ),
        5 => format!("SELECT ?x ?v WHERE {{ ?x {} ?v . FILTER(?v > 1) }}", pred(p1)),
        6 => format!("SELECT ?p ?o WHERE {{ <e:s{s}> ?p ?o }}"),
        _ => format!(
            "SELECT ?x ?a ?c WHERE {{ ?x {} ?a . ?x {} <e:s{s}> . \
             OPTIONAL {{ ?x {} ?c }} }}",
            pred(p1),
            pred(p2),
            pred(p3)
        ),
    }
}

fn canon(s: &db2rdf::Solutions) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = s
        .rows
        .iter()
        .map(|r| r.iter().map(|t| t.as_ref().map(|t| t.encode()).unwrap_or_default()).collect())
        .collect();
    rows.sort();
    rows
}

#[test]
fn all_layouts_match_reference() {
    let mut rng = SplitMix64::seed_from_u64(0xDB2);
    for case in 0..64 {
        let graph = arb_graph(&mut rng);
        let query_text = arb_query(&mut rng);
        let query = parse_sparql(&query_text).unwrap();
        let expected = naive::evaluate(&graph, &query);
        let expected_rows = canon(&expected);
        for layout in [Layout::Entity, Layout::TripleStore, Layout::Vertical] {
            let mut store = RdfStore::new(StoreConfig::with_layout(layout));
            store.load(&graph).unwrap();
            let got = store.query(&query_text).unwrap_or_else(|e| {
                panic!("case {case}: {layout:?} failed on {query_text}: {e}")
            });
            assert_eq!(
                canon(&got),
                expected_rows,
                "case {case}: layout {layout:?} disagrees with reference on {query_text} \
                 over {} triples",
                graph.len()
            );
        }
    }
}

#[test]
fn entity_layout_with_tiny_columns_still_correct() {
    let mut rng = SplitMix64::seed_from_u64(0x7146);
    for case in 0..48 {
        let graph = arb_graph(&mut rng);
        // Force spills: only 2 columns, 1 hash function.
        let mut cfg = StoreConfig::with_layout(Layout::Entity);
        cfg.entity.max_cols = 2;
        cfg.entity.hash_fns = 1;
        cfg.entity.coloring = db2rdf::ColoringMode::HashOnly;
        let mut store = RdfStore::new(cfg);
        store.load(&graph).unwrap();
        let query_text = "SELECT ?x ?a ?b WHERE { ?x <e:p0> ?a . ?x <e:p1> ?b }";
        let query = parse_sparql(query_text).unwrap();
        let expected = naive::evaluate(&graph, &query);
        let got = store.query(query_text).unwrap();
        assert_eq!(canon(&got), canon(&expected), "case {case}");
    }
}
