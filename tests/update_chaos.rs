//! Chaos coverage for group-committed SPARQL updates (DESIGN.md §4.12).
//!
//! Every `SharedStore::update` request is one WAL batch frame, made durable
//! by its group's single fsync. These tests drive that path through crashes
//! and injected faults and hold it to the durability contract:
//!
//! - **truncation sweep** — run a workload of update requests on a durable
//!   store, recording `(wal_len, expected state)` after every ack; then cut
//!   the WAL at every group boundary and at byte offsets in between, reopen,
//!   and assert recovery lands on *exactly* the longest acked prefix — acked
//!   updates survive, unacked (torn) frames vanish whole, never partially;
//! - **write/sync fault sweeps** — replay the workload with an injected
//!   write, short-write or sync failure at every index: the faulted request
//!   must fail explicitly, degrade the store to read-only (subsequent
//!   updates refused with `ReadOnly`), keep serving reads at the last acked
//!   snapshot, and a clean reopen must recover the acked state (a
//!   fsync-refused frame that still fully replays is also acceptable — the
//!   request applies whole or not at all, never split);
//! - **concurrent storm** — many writers group-committing at once, then a
//!   crash: every acked request must be present after recovery.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use db2rdf::{oracle, RdfStore, SharedStore, StoreConfig, StoreError};
use rdf::Triple;
use relstore::ScriptedFaults;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "db2rdf-uchaos-{}-{}-{name}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic workload where every request changes state at its
/// position, so each one lands exactly one WAL frame.
fn requests() -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for i in 0..4u32 {
        out.push(format!(
            "INSERT DATA {{ <http://s/{i}> <http://p/0> <http://s/{}> . \
             <http://s/{i}> <http://p/1> {i} }}",
            i + 1
        ));
    }
    out.push(
        "DELETE { ?s <http://p/0> ?o } INSERT { ?o <http://p/2> ?s } \
         WHERE { ?s <http://p/0> ?o FILTER (?s = <http://s/1>) }"
            .into(),
    );
    out.push("DELETE DATA { <http://s/2> <http://p/1> 2 }".into());
    out.push("INSERT DATA { <http://s/9> <http://p/3> \"valX\" }".into());
    out.push("DELETE WHERE { <http://s/3> ?p ?o }".into());
    out.push("INSERT { ?s <http://p/4> 7 } WHERE { ?s <http://p/1> ?v }".into());
    out.push("DELETE DATA { <http://s/9> <http://p/3> \"valX\" }".into());
    out
}

fn apply_reference(state: &mut Vec<Triple>, request: &str) {
    let parsed = sparql::parse_update(request).expect("workload request parses");
    oracle::naive_apply_update(state, &parsed);
}

fn canon_triples(triples: &[Triple]) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = triples
        .iter()
        .map(|t| vec![t.subject.encode(), t.predicate.encode(), t.object.encode()])
        .collect();
    rows.sort();
    rows
}

/// Full contents of a store; a store that never loaded counts as empty.
fn dump(store: &RdfStore) -> Vec<Vec<String>> {
    match store.query("SELECT ?s ?p ?o WHERE { ?s ?p ?o }") {
        Ok(sols) => oracle::canon(&sols),
        Err(StoreError::Unsupported(m)) if m.contains("empty") => Vec::new(),
        Err(e) => panic!("full scan failed: {e}"),
    }
}

fn wal_file(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("wal."))
        })
        .collect();
    wals.sort();
    wals.pop().expect("durable store has a WAL")
}

#[test]
fn acked_update_groups_recover_exactly_at_every_wal_cut() {
    let dir = fresh_dir("trunc");
    let mut boundaries: Vec<(u64, Vec<Vec<String>>)> = Vec::new();
    let mut state: Vec<Triple> = Vec::new();
    {
        let shared =
            SharedStore::new(RdfStore::open(&dir, StoreConfig::default()).unwrap());
        boundaries.push((shared.write().wal_len().unwrap(), canon_triples(&state)));
        for request in requests() {
            shared.update(&request).unwrap_or_else(|e| panic!("{request}: {e}"));
            apply_reference(&mut state, &request);
            boundaries.push((shared.write().wal_len().unwrap(), canon_triples(&state)));
        }
        // Crash: drop without checkpoint; the WAL is the only truth.
    }
    let wal = wal_file(&dir);
    let bytes = std::fs::read(&wal).unwrap();
    let total = bytes.len() as u64;
    assert_eq!(boundaries.last().unwrap().0, total, "every request hit the WAL");
    assert!(
        boundaries.windows(2).all(|w| w[0].0 < w[1].0),
        "each request appends a nonempty frame"
    );

    // Cut at every group boundary plus evenly spaced mid-frame offsets.
    let mut cuts: Vec<u64> = boundaries.iter().map(|(len, _)| *len).collect();
    let step = (total / 128).max(1);
    cuts.extend((0..=total).step_by(step as usize));
    cuts.sort_unstable();
    cuts.dedup();

    let work = fresh_dir("trunc-work");
    for &cut in &cuts {
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).unwrap();
        std::fs::write(work.join(wal.file_name().unwrap()), &bytes[..cut as usize]).unwrap();
        let expected = boundaries
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut)
            .map(|(_, s)| s.clone())
            .unwrap_or_default();
        let recovered = RdfStore::open(&work, StoreConfig::default())
            .unwrap_or_else(|e| panic!("cut {cut}/{total}: reopen failed: {e}"));
        let got = dump(&recovered);
        assert_eq!(
            got, expected,
            "cut {cut}/{total}: recovery must land on the longest acked prefix — \
             whole requests, never fragments"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn faulted_group_commits_degrade_explicitly_and_recover_atomically() {
    let reqs = requests();
    let mut fault_hit = 0usize;
    for plan in 0..18usize {
        let index = plan / 3;
        let (name, faults) = match plan % 3 {
            0 => (format!("fail_write({index})"), ScriptedFaults::new().fail_write(index)),
            1 => (
                format!("short_write({index},3)"),
                ScriptedFaults::new().short_write(index, 3),
            ),
            _ => (format!("fail_sync({index})"), ScriptedFaults::new().fail_sync(index)),
        };
        let dir = fresh_dir("fault");
        let store =
            match RdfStore::open_with_faults(&dir, StoreConfig::default(), faults.into_handle())
            {
                Ok(s) => s,
                Err(_) => {
                    // A fault while writing the WAL header refuses the open
                    // explicitly — a valid outcome, nothing to recover.
                    let _ = std::fs::remove_dir_all(&dir);
                    continue;
                }
            };
        let shared = SharedStore::new(store);

        let mut acked: Vec<Triple> = Vec::new();
        // States a clean reopen may land on: the acked prefix, or (sync
        // faults only: the frame was fully appended, just not fsynced, and
        // may still replay) acked + the whole faulted request.
        let mut acceptable: Vec<Vec<Vec<String>>> = vec![canon_triples(&acked)];
        let mut faulted = false;
        for request in &reqs {
            match shared.update(request) {
                Ok(_) => {
                    assert!(!faulted, "[{name}] update acked after the store degraded");
                    apply_reference(&mut acked, request);
                    acceptable = vec![canon_triples(&acked)];
                }
                Err(e) if !faulted => {
                    faulted = true;
                    fault_hit += 1;
                    assert!(
                        shared.is_read_only(),
                        "[{name}] first failure ({e}) must degrade the store, not limp along"
                    );
                    let mut with_request = acked.clone();
                    apply_reference(&mut with_request, request);
                    acceptable.push(canon_triples(&with_request));
                }
                Err(e) => {
                    assert!(
                        e.is_read_only(),
                        "[{name}] post-degrade update failed with {e}, not ReadOnly"
                    );
                }
            }
        }
        // Reads keep flowing from the last published snapshot, which the
        // group abort rolled back to the acked state.
        assert_eq!(
            dump(&shared.snapshot()),
            canon_triples(&acked),
            "[{name}] degraded snapshot must serve exactly the acked state"
        );
        drop(shared);

        let recovered = RdfStore::open(&dir, StoreConfig::default())
            .unwrap_or_else(|e| panic!("[{name}] clean reopen failed: {e}"));
        let got = dump(&recovered);
        assert!(
            acceptable.contains(&got),
            "[{name}] recovered {} triples — neither the acked state ({}) nor \
             acked + whole faulted request",
            got.len(),
            acked.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(fault_hit >= 3, "fault plans never fired mid-workload ({fault_hit})");
}

#[test]
fn concurrent_update_storm_survives_crash() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 12;
    let dir = fresh_dir("storm");
    {
        let shared =
            SharedStore::new(RdfStore::open(&dir, StoreConfig::default()).unwrap());
        shared
            .update("INSERT DATA { <http://seed/0> <http://p/0> <http://seed/0> }")
            .unwrap();
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let shared = shared.clone();
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        shared
                            .update(&format!(
                                "INSERT DATA {{ <http://t/{w}-{i}> <http://p/{w}> {i} }}"
                            ))
                            .unwrap_or_else(|e| panic!("writer {w} update {i}: {e}"));
                    }
                });
            }
        });
        let stats = shared.update_stats();
        assert_eq!(stats.applied, (WRITERS * PER_WRITER + 1) as u64);
        assert_eq!(stats.failed, 0);
        assert!(stats.groups <= stats.applied);
        assert_eq!(stats.batch_sizes.iter().sum::<u64>(), stats.groups);
        // Crash without checkpoint.
    }
    let recovered = RdfStore::open(&dir, StoreConfig::default()).unwrap();
    let got = dump(&recovered);
    assert_eq!(got.len(), WRITERS * PER_WRITER + 1);
    for w in 0..WRITERS {
        for i in 0..PER_WRITER {
            let s = format!("<http://t/{w}-{i}>");
            assert!(
                got.iter().any(|row| row[0] == s),
                "acked update <{w}-{i}> missing after recovery"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
