//! Integration tests: every benchmark workload query (Q, LQ, SQ, DQ, PQ)
//! runs through the full stack on a scaled-down dataset, and the entity
//! layout's answers match both the naive reference evaluator and the
//! triple-store layout, query by query.

use db2rdf::{naive, Layout, RdfStore, StoreConfig};
use datagen::{dbpedia, lubm, micro, prbench, sp2b, BenchQuery};
use rdf::Triple;
use sparql::parse_sparql;

fn canon(s: &db2rdf::Solutions) -> (Option<bool>, Vec<Vec<String>>) {
    let mut rows: Vec<Vec<String>> = s
        .rows
        .iter()
        .map(|r| r.iter().map(|t| t.as_ref().map(|t| t.encode()).unwrap_or_default()).collect())
        .collect();
    rows.sort();
    (s.boolean, rows)
}

fn check_workload(name: &str, triples: &[Triple], queries: &[BenchQuery], skip: &[&str]) {
    let mut entity = RdfStore::new(StoreConfig::with_layout(Layout::Entity));
    entity.load(triples).unwrap();
    let mut tstore = RdfStore::new(StoreConfig::with_layout(Layout::TripleStore));
    tstore.load(triples).unwrap();

    for q in queries {
        if skip.contains(&q.name.as_str()) {
            continue;
        }
        let parsed = parse_sparql(&q.sparql)
            .unwrap_or_else(|e| panic!("{name}/{}: parse error {e}", q.name));
        let expected = naive::evaluate(triples, &parsed);
        let got = entity
            .query(&q.sparql)
            .unwrap_or_else(|e| panic!("{name}/{} failed on entity layout: {e}", q.name));
        assert_eq!(
            canon(&got),
            canon(&expected),
            "{name}/{}: entity layout disagrees with reference",
            q.name
        );
        let got_ts = tstore
            .query(&q.sparql)
            .unwrap_or_else(|e| panic!("{name}/{} failed on triple store: {e}", q.name));
        assert_eq!(
            canon(&got_ts),
            canon(&expected),
            "{name}/{}: triple store disagrees with reference",
            q.name
        );
    }
}

#[test]
fn micro_workload_matches_reference() {
    let triples = micro::generate(400, 11);
    let mut queries = micro::queries();
    queries.push(micro::fig14_query());
    check_workload("micro", &triples, &queries, &[]);
}

#[test]
fn lubm_workload_matches_reference() {
    let triples = lubm::generate(1, 11);
    // Order-insensitive comparison; all 12 queries.
    check_workload("lubm", &triples, &lubm::queries(), &[]);
}

#[test]
fn sp2b_workload_matches_reference() {
    let triples = sp2b::generate(250, 11);
    // SQ2 orders with LIMIT: row *sets* may legitimately differ between
    // implementations when the order key ties, so compare it separately
    // without the limit-sensitive tail. SQ11's OFFSET slice has the same
    // property.
    check_workload("sp2b", &triples, &sp2b::queries(), &["SQ2", "SQ11"]);
}

#[test]
fn sp2b_ordered_queries_return_plausible_slices() {
    let triples = sp2b::generate(250, 11);
    let mut store = RdfStore::entity();
    store.load(&triples).unwrap();
    for q in sp2b::queries().into_iter().filter(|q| q.name == "SQ2" || q.name == "SQ11") {
        let parsed = parse_sparql(&q.sparql).unwrap();
        let expected = naive::evaluate(&triples, &parsed);
        let got = store.query(&q.sparql).unwrap();
        assert_eq!(got.len(), expected.len(), "{} cardinality", q.name);
    }
}

#[test]
fn dbpedia_workload_matches_reference() {
    let triples = dbpedia::generate(600, 120, 11);
    // DQ16/17/20 use LIMIT over unordered or tie-heavy results: compare
    // cardinality only (handled below).
    check_workload("dbpedia", &triples, &dbpedia::queries(), &["DQ16", "DQ17", "DQ20"]);
    let mut store = RdfStore::entity();
    store.load(&triples).unwrap();
    for q in dbpedia::queries().into_iter().filter(|q| {
        matches!(q.name.as_str(), "DQ16" | "DQ17" | "DQ20")
    }) {
        let parsed = parse_sparql(&q.sparql).unwrap();
        let expected = naive::evaluate(&triples, &parsed);
        let got = store.query(&q.sparql).unwrap();
        assert_eq!(got.len(), expected.len(), "{} cardinality", q.name);
    }
}

#[test]
fn prbench_workload_matches_reference() {
    let triples = prbench::generate(120, 11);
    check_workload("prbench", &triples, &prbench::queries(), &[]);
}

#[test]
fn vertical_layout_agrees_on_micro_and_lubm() {
    for (triples, queries) in [
        (micro::generate(300, 5), micro::queries()),
        (lubm::generate(1, 5), lubm::queries()),
    ] {
        let mut vertical = RdfStore::new(StoreConfig::with_layout(Layout::Vertical));
        vertical.load(&triples).unwrap();
        for q in &queries {
            let parsed = parse_sparql(&q.sparql).unwrap();
            let expected = naive::evaluate(&triples, &parsed);
            let got = vertical
                .query(&q.sparql)
                .unwrap_or_else(|e| panic!("{} failed on vertical: {e}", q.name));
            assert_eq!(canon(&got), canon(&expected), "{} vertical", q.name);
        }
    }
}

#[test]
fn coloring_modes_do_not_change_answers() {
    let triples = lubm::generate(1, 3);
    let q = &lubm::queries()[7]; // LQ8: star + join + union expansion
    let parsed = parse_sparql(&q.sparql).unwrap();
    let expected = canon(&naive::evaluate(&triples, &parsed));
    for coloring in [
        db2rdf::ColoringMode::Full,
        db2rdf::ColoringMode::Sample(0.1),
        db2rdf::ColoringMode::HashOnly,
    ] {
        let mut cfg = StoreConfig::default();
        cfg.entity.coloring = coloring;
        cfg.entity.max_cols = 12;
        let mut store = RdfStore::new(cfg);
        store.load(&triples).unwrap();
        let got = store.query(&q.sparql).unwrap();
        assert_eq!(canon(&got), expected, "coloring {coloring:?}");
    }
}

#[test]
fn naive_optimizer_matches_cost_based_answers() {
    let triples = prbench::generate(80, 9);
    let cost =
        StoreConfig { optimizer: db2rdf::OptimizerMode::CostBased, ..Default::default() };
    let naive_cfg =
        StoreConfig { optimizer: db2rdf::OptimizerMode::Naive, ..Default::default() };
    let mut a = RdfStore::new(cost);
    a.load(&triples).unwrap();
    let mut b = RdfStore::new(naive_cfg);
    b.load(&triples).unwrap();
    for q in prbench::queries() {
        let ra = a.query(&q.sparql).unwrap();
        let rb = b.query(&q.sparql).unwrap();
        assert_eq!(canon(&ra), canon(&rb), "{} optimizer modes disagree", q.name);
    }
}
